package metrics

// FailSeries counts failed operations per time interval — the companion
// of BandTracker for availability: bands show how slow the successes
// were, the fail series shows how many operations never succeeded at all.
type FailSeries struct {
	width  int64
	counts []int64
	total  int64
}

// NewFailSeries returns a series with the given interval width (ns).
func NewFailSeries(width int64) *FailSeries {
	if width <= 0 {
		panic("metrics: NewFailSeries with non-positive width")
	}
	return &FailSeries{width: width}
}

// Width returns the interval width in nanoseconds.
func (f *FailSeries) Width() int64 { return f.width }

// Record accounts one failure at time t (ns since run start). Failures
// may arrive out of interval order (concurrent workers).
func (f *FailSeries) Record(t int64) {
	if t < 0 {
		t = 0
	}
	idx := int(t / f.width)
	for len(f.counts) <= idx {
		f.counts = append(f.counts, 0)
	}
	f.counts[idx]++
	f.total++
}

// At returns the failure count of interval idx (0 past the end).
func (f *FailSeries) At(idx int) int64 {
	if idx < 0 || idx >= len(f.counts) {
		return 0
	}
	return f.counts[idx]
}

// Len returns the number of intervals recorded.
func (f *FailSeries) Len() int { return len(f.counts) }

// Total returns the total failure count.
func (f *FailSeries) Total() int64 { return f.total }

// RecoveryStats is the robustness view of a faulted run: how far the
// system degraded during the fault window and how long it took to return
// to its pre-fault SLA band afterwards. It backs the Fig 1e report panel.
type RecoveryStats struct {
	// FaultStartNs/FaultEndNs bound the fault window measured against.
	FaultStartNs, FaultEndNs int64
	// BaselineViolationRate is the SLA violation rate of the pre-fault
	// intervals — the band the system must return to.
	BaselineViolationRate float64
	// PeakViolationRate is the worst per-interval violation rate at or
	// after fault start (failures count as violations).
	PeakViolationRate float64
	// TimeToRecoverNs is the time from fault end until the system first
	// sustains recoveredSustain consecutive healthy intervals (no
	// failures, some completions, violation rate within tolerance of
	// baseline), measured to the start of the first such interval. -1 when
	// the run ends without recovering.
	TimeToRecoverNs int64
	// Recovered reports whether the run recovered before it ended.
	Recovered bool
	// Availability is the fraction of all operations (completed + failed)
	// that succeeded.
	Availability float64
	// FailedOps is the number of failed operations.
	FailedOps int64
	// ErrorBudgetBurn is the fraction of the run's error budget consumed:
	// (1 - Availability) / budget, where the budget is the fraction of
	// allowed failures (SRE-style; 1.0 means the budget is exactly spent).
	ErrorBudgetBurn float64
}

// Recovery-measurement constants: an interval is healthy when its
// violation rate is within recoveryTolerance of the pre-fault baseline
// and it saw no failures; recovery requires recoveredSustain consecutive
// healthy intervals. DefaultErrorBudget is the allowed failure fraction
// ("three nines") when the caller does not set one.
const (
	recoveryTolerance  = 0.05
	recoveredSustain   = 3
	DefaultErrorBudget = 0.001
)

// Recovery computes the robustness view of this snapshot against a fault
// window [faultStartNs, faultEndNs). budgetFrac is the allowed failure
// fraction for error-budget burn (<= 0 means DefaultErrorBudget). The
// snapshot must have band tracking (a finalized Collector always does).
func (s Snapshot) Recovery(faultStartNs, faultEndNs int64, budgetFrac float64) RecoveryStats {
	if budgetFrac <= 0 {
		budgetFrac = DefaultErrorBudget
	}
	rec := RecoveryStats{
		FaultStartNs:    faultStartNs,
		FaultEndNs:      faultEndNs,
		TimeToRecoverNs: -1,
	}
	if s.Fails != nil {
		rec.FailedOps = s.Fails.Total()
	} else {
		rec.FailedOps = s.Failed
	}
	total := s.Completed + rec.FailedOps
	if total > 0 {
		rec.Availability = float64(s.Completed) / float64(total)
	} else {
		rec.Availability = 1
	}
	rec.ErrorBudgetBurn = (1 - rec.Availability) / budgetFrac

	if s.Bands == nil {
		return rec
	}
	ivs := s.Bands.Intervals()
	width := s.Bands.Width()
	if len(ivs) == 0 || width <= 0 {
		return rec
	}

	// Baseline: violation rate of the intervals fully before fault start.
	var baseDone, baseBad int64
	for _, iv := range ivs {
		if iv.Start+width > faultStartNs {
			break
		}
		baseDone += iv.Completed
		baseBad += iv.Violated
	}
	if baseDone > 0 {
		rec.BaselineViolationRate = float64(baseBad) / float64(baseDone)
	}

	// Degradation and recovery scan from the first interval touching the
	// fault. Failures count against each interval's rate: an interval
	// where every op failed is maximally violated, not empty.
	healthy := 0
	firstIdx := int(faultStartNs / width)
	for idx := firstIdx; idx < len(ivs) || (s.Fails != nil && idx < s.Fails.Len()); idx++ {
		var iv Interval
		if idx < len(ivs) {
			iv = ivs[idx]
		} else {
			iv.Start = int64(idx) * width
		}
		fails := int64(0)
		if s.Fails != nil {
			fails = s.Fails.At(idx)
		}
		done := iv.Completed + fails
		var rate float64
		if done > 0 {
			rate = float64(iv.Violated+fails) / float64(done)
		}
		if rate > rec.PeakViolationRate {
			rec.PeakViolationRate = rate
		}
		if rec.Recovered || iv.Start+width <= faultEndNs {
			continue // still inside the fault window (or already done)
		}
		if fails == 0 && iv.Completed > 0 && rate <= rec.BaselineViolationRate+recoveryTolerance {
			healthy++
			if healthy == recoveredSustain {
				first := iv.Start - int64(recoveredSustain-1)*width
				rec.TimeToRecoverNs = first - faultEndNs
				if rec.TimeToRecoverNs < 0 {
					rec.TimeToRecoverNs = 0
				}
				rec.Recovered = true
			}
		} else {
			healthy = 0
		}
	}
	return rec
}
