package metrics

import "testing"

// TestCollectorFixedSLA: with a fixed threshold, band tracking starts on
// the first completion and nothing is buffered.
func TestCollectorFixedSLA(t *testing.T) {
	c := NewCollector(CollectorConfig{IntervalNs: 1e6, SLANs: 500})
	c.Record(10, 400)
	c.Record(20, 600)
	s := c.Snapshot()
	if s.SLANs != 500 {
		t.Fatalf("SLA = %d, want 500", s.SLANs)
	}
	if s.Completed != 2 || s.Cumulative.Total() != 2 || s.Latency.Count() != 2 {
		t.Fatalf("completed=%d cum=%d hist=%d, want 2 each",
			s.Completed, s.Cumulative.Total(), s.Latency.Count())
	}
	var bandTotal, violated int64
	for _, iv := range s.Bands.Intervals() {
		bandTotal += iv.Completed
		violated += iv.Violated
	}
	if bandTotal != 2 || violated != 1 {
		t.Fatalf("bands saw %d completions (%d violated), want 2 (1)", bandTotal, violated)
	}
}

// TestCollectorDeferredCalibration: the threshold is derived from the
// first CalibrateAfter samples and the buffer is replayed losslessly.
func TestCollectorDeferredCalibration(t *testing.T) {
	c := NewCollector(CollectorConfig{IntervalNs: 1e6, CalibrateAfter: 4})
	lats := []int64{100, 100, 100, 100, 9000}
	for i, l := range lats {
		c.Record(int64(i+1)*10, l)
		if i < 3 && c.SLA() != 0 {
			t.Fatalf("SLA calibrated after %d samples", i+1)
		}
	}
	s := c.Snapshot()
	// CalibrateSLA(median=100, 0.5, 20) on the log-bucketed histogram.
	want := CalibrateSLA(histOf(lats[:4]), 0.5, 20)
	if s.SLANs != want {
		t.Fatalf("SLA = %d, want %d", s.SLANs, want)
	}
	var bandTotal int64
	for _, iv := range s.Bands.Intervals() {
		bandTotal += iv.Completed
	}
	if bandTotal != int64(len(lats)) {
		t.Fatalf("bands saw %d completions, want %d (buffer replayed)", bandTotal, len(lats))
	}
}

// TestCollectorShortRun: Snapshot on a run shorter than the calibration
// window calibrates from whatever arrived.
func TestCollectorShortRun(t *testing.T) {
	c := NewCollector(CollectorConfig{IntervalNs: 1e6})
	c.Record(5, 200)
	c.Record(6, 300)
	s := c.Snapshot()
	if s.SLANs <= 0 {
		t.Fatalf("SLA = %d, want calibrated > 0", s.SLANs)
	}
	var bandTotal int64
	for _, iv := range s.Bands.Intervals() {
		bandTotal += iv.Completed
	}
	if bandTotal != 2 {
		t.Fatalf("bands saw %d completions, want 2", bandTotal)
	}
}

// TestCollectorEmpty: a run with zero completions still snapshots with the
// 1ms fallback threshold.
func TestCollectorEmpty(t *testing.T) {
	s := NewCollector(CollectorConfig{IntervalNs: 1e6}).Snapshot()
	if s.SLANs != 1_000_000 {
		t.Fatalf("SLA = %d, want 1ms fallback", s.SLANs)
	}
	if s.Completed != 0 || len(s.Bands.Intervals()) != 0 {
		t.Fatalf("empty snapshot has data")
	}
}

// TestCollectorCalibrateIdempotent: explicit Calibrate at a phase boundary
// then more records keep one tracker.
func TestCollectorCalibrateIdempotent(t *testing.T) {
	c := NewCollector(CollectorConfig{IntervalNs: 1e6, CalibrateAfter: 100})
	c.Record(1, 50)
	c.Calibrate()
	sla := c.SLA()
	if sla == 0 {
		t.Fatal("Calibrate did not set SLA")
	}
	c.Calibrate() // no-op
	c.Record(2, 60)
	s := c.Snapshot()
	if s.SLANs != sla {
		t.Fatalf("SLA changed across Calibrate calls: %d -> %d", sla, s.SLANs)
	}
	var bandTotal int64
	for _, iv := range s.Bands.Intervals() {
		bandTotal += iv.Completed
	}
	if bandTotal != 2 {
		t.Fatalf("bands saw %d completions, want 2", bandTotal)
	}
}

func histOf(lats []int64) *Histogram {
	h := NewHistogram()
	for _, l := range lats {
		h.Record(l)
	}
	return h
}
