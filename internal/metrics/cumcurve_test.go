package metrics

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func constantCurve(n int, interval int64) *CumCurve {
	c := &CumCurve{}
	for i := 1; i <= n; i++ {
		c.AddCompletion(int64(i) * interval)
	}
	return c
}

func TestCumCurveBasics(t *testing.T) {
	c := constantCurve(10, 1e9)
	if c.Total() != 10 || c.Duration() != 10e9 || c.Len() != 10 {
		t.Fatalf("total=%d dur=%d len=%d", c.Total(), c.Duration(), c.Len())
	}
	if tp := c.Throughput(); math.Abs(tp-1) > 1e-9 {
		t.Fatalf("throughput = %v", tp)
	}
}

func TestCumCurveAt(t *testing.T) {
	c := constantCurve(10, 1e9)
	if c.At(0) != 0 {
		t.Fatal("At(0)")
	}
	if c.At(5e9) != 5 {
		t.Fatalf("At(5s) = %d", c.At(5e9))
	}
	if c.At(100e9) != 10 {
		t.Fatal("At beyond end")
	}
}

func TestCumCurvePanicsOnRegression(t *testing.T) {
	c := &CumCurve{}
	c.Add(100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on decreasing time")
		}
	}()
	c.Add(50, 2)
}

func TestAreaVsIdealConstantIsZero(t *testing.T) {
	c := constantCurve(1000, 1e6)
	if a := c.AreaVsIdeal(); math.Abs(a) > 0.01 {
		t.Fatalf("constant-rate area score = %v, want ~0", a)
	}
}

func TestAreaVsIdealSlowStartPositive(t *testing.T) {
	// Paper Fig 1b: "the SUT starts slow and later catches up" — area
	// difference vs ideal must be positive.
	c := &CumCurve{}
	tNow := int64(0)
	for i := 0; i < 500; i++ { // slow: 1 per 4ms
		tNow += 4e6
		c.AddCompletion(tNow)
	}
	for i := 0; i < 1500; i++ { // fast: 1 per 1ms
		tNow += 1e6
		c.AddCompletion(tNow)
	}
	if a := c.AreaVsIdeal(); a <= 0.05 {
		t.Fatalf("slow-start area score = %v, want clearly positive", a)
	}
}

func TestAreaVsIdealFastStartNegative(t *testing.T) {
	c := &CumCurve{}
	tNow := int64(0)
	for i := 0; i < 1500; i++ {
		tNow += 1e6
		c.AddCompletion(tNow)
	}
	for i := 0; i < 500; i++ {
		tNow += 4e6
		c.AddCompletion(tNow)
	}
	if a := c.AreaVsIdeal(); a >= -0.05 {
		t.Fatalf("fast-start area score = %v, want clearly negative", a)
	}
}

func TestAreaVsIdealEmpty(t *testing.T) {
	c := &CumCurve{}
	if c.AreaVsIdeal() != 0 {
		t.Fatal("empty curve score")
	}
}

func TestAreaBetweenOrdering(t *testing.T) {
	fast := constantCurve(2000, 1e6) // 1000 q/s
	slow := constantCurve(1000, 2e6) // 500 q/s
	if d := AreaBetween(fast, slow); d <= 0 {
		t.Fatalf("fast vs slow = %v, want positive", d)
	}
	if d := AreaBetween(slow, fast); d >= 0 {
		t.Fatalf("slow vs fast = %v, want negative", d)
	}
	if d := AreaBetween(fast, fast); d != 0 {
		t.Fatalf("self comparison = %v", d)
	}
}

func TestAreaBetweenEmpty(t *testing.T) {
	if AreaBetween(&CumCurve{}, constantCurve(10, 1e9)) != 0 {
		t.Fatal("empty comparison")
	}
}

func TestSlopeReflectsLocalThroughput(t *testing.T) {
	c := &CumCurve{}
	tNow := int64(0)
	for i := 0; i < 1000; i++ { // 1000 q/s for 1s
		tNow += 1e6
		c.AddCompletion(tNow)
	}
	for i := 0; i < 100; i++ { // 100 q/s for 1s
		tNow += 10e6
		c.AddCompletion(tNow)
	}
	early := c.Slope(1e9, 5e8)
	late := c.Slope(2e9, 5e8)
	if early < 900 || early > 1100 {
		t.Fatalf("early slope = %v", early)
	}
	if late < 80 || late > 120 {
		t.Fatalf("late slope = %v", late)
	}
	if c.Slope(1e9, 0) != 0 {
		t.Fatal("zero window must return 0")
	}
}

func TestDownsample(t *testing.T) {
	c := constantCurve(1000, 1e6)
	d := c.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled len = %d", d.Len())
	}
	if d.Total() != c.Total() || d.Duration() != c.Duration() {
		t.Fatal("downsample must preserve endpoints")
	}
	// No-op when already small.
	if c.Downsample(10000).Len() != 1000 {
		t.Fatal("oversized downsample changed length")
	}
}

func TestPointsIteration(t *testing.T) {
	c := constantCurve(5, 1e9)
	var n int
	var lastT, lastC int64
	c.Points(func(tm, cnt int64) {
		if tm < lastT || cnt < lastC {
			t.Fatal("points out of order")
		}
		lastT, lastC = tm, cnt
		n++
	})
	if n != 5 {
		t.Fatalf("visited %d points", n)
	}
}

func TestAreaVsIdealBounded(t *testing.T) {
	// Randomized completion patterns must keep the score in [-1, 1].
	r := stats.NewRNG(42)
	for trial := 0; trial < 20; trial++ {
		c := &CumCurve{}
		tNow := int64(0)
		for i := 0; i < 500; i++ {
			tNow += int64(1 + r.Intn(1000))
			c.AddCompletion(tNow)
		}
		a := c.AreaVsIdeal()
		if a < -1 || a > 1 {
			t.Fatalf("score out of range: %v", a)
		}
	}
}
