package metrics

// SessionTracker aggregates per-session SLA accounting for interactive
// workloads (workload.SessionArrival): the engine calls Begin at each
// session boundary and the collector feeds it every completion. A session's
// makespan is the span from its first arrival to its last completion; it
// meets its budget when every operation completes within BudgetNs of the
// session start. Like the rest of the pipeline it is single-threaded:
// engines with concurrent workers merge to completion order first.
type SessionTracker struct {
	budgetNs int64
	sessions int64
	met      int64
	lateOps  int64
	makespan *Histogram

	open            bool
	start, lastDone int64
	late            bool
}

// NewSessionTracker returns a tracker with the given per-session budget
// (0 disables budget accounting).
func NewSessionTracker(budgetNs int64) *SessionTracker {
	return &SessionTracker{budgetNs: budgetNs, makespan: NewHistogram()}
}

// Begin opens a new session whose first operation arrived at the given
// time, closing the previous one.
func (t *SessionTracker) Begin(arrive int64) {
	t.finish()
	t.open = true
	t.start = arrive
	t.lastDone = arrive
	t.late = false
}

// Observe accounts one operation completion at the given time. Completions
// before the first Begin are ignored.
func (t *SessionTracker) Observe(done int64) {
	if !t.open {
		return
	}
	if done > t.lastDone {
		t.lastDone = done
	}
	if t.budgetNs > 0 && done > t.start+t.budgetNs {
		t.lateOps++
		t.late = true
	}
}

// finish closes the open session into the aggregates.
func (t *SessionTracker) finish() {
	if !t.open {
		return
	}
	t.open = false
	t.sessions++
	t.makespan.Record(t.lastDone - t.start)
	if !t.late {
		t.met++
	}
}

// Stats closes any open session and returns the digest. Idempotent: a
// second call without intervening Begin returns the same totals.
func (t *SessionTracker) Stats() *SessionStats {
	t.finish()
	return &SessionStats{
		BudgetNs:  t.budgetNs,
		Sessions:  t.sessions,
		MetBudget: t.met,
		LateOps:   t.lateOps,
		Makespan:  t.makespan,
	}
}

// SessionStats is the finalized per-session digest: how many interactive
// sessions ran, how many finished every operation within the budget, how
// many individual operations landed past it, and the session-makespan
// distribution.
type SessionStats struct {
	// BudgetNs is the per-session budget applied (0 when only counting).
	BudgetNs int64
	// Sessions is the number of sessions observed.
	Sessions int64
	// MetBudget is how many sessions completed every op within BudgetNs
	// of the session start (all sessions when BudgetNs is 0).
	MetBudget int64
	// LateOps counts individual operations completing past the budget.
	LateOps int64
	// Makespan is the distribution of session spans (first arrival to
	// last completion).
	Makespan *Histogram
}

// MetRate returns the fraction of sessions that met their budget.
func (s *SessionStats) MetRate() float64 {
	if s.Sessions == 0 {
		return 0
	}
	return float64(s.MetBudget) / float64(s.Sessions)
}
