package metrics

import (
	"math"
	"testing"
)

func TestFailSeries(t *testing.T) {
	f := NewFailSeries(100)
	f.Record(250)
	f.Record(50)
	f.Record(250) // out of interval order is fine
	f.Record(-5)  // clamps to 0
	if f.Width() != 100 {
		t.Fatalf("width = %d", f.Width())
	}
	if f.Len() != 3 {
		t.Fatalf("len = %d, want 3 intervals", f.Len())
	}
	if f.At(0) != 2 || f.At(1) != 0 || f.At(2) != 2 {
		t.Fatalf("counts = %d,%d,%d", f.At(0), f.At(1), f.At(2))
	}
	if f.At(-1) != 0 || f.At(99) != 0 {
		t.Fatal("out-of-range At not zero")
	}
	if f.Total() != 4 {
		t.Fatalf("total = %d", f.Total())
	}
}

// synthSnapshot builds a run with interval width 100 and SLA 100:
// five clean pre-fault intervals, a fault window [500,800) that degrades
// into a full outage, one slow (violating) interval right after the fault,
// then `healthyTail` clean intervals.
func synthSnapshot(healthyTail int) Snapshot {
	c := NewCollector(CollectorConfig{IntervalNs: 100, SLANs: 100})
	at := func(iv int) int64 { return int64(iv)*100 + 10 }
	// Intervals 0-4: 10 fast ops each, zero violations.
	for iv := 0; iv < 5; iv++ {
		for k := 0; k < 10; k++ {
			c.Record(at(iv), 50)
		}
	}
	// Interval 5: half the ops fail.
	for k := 0; k < 5; k++ {
		c.Record(at(5), 50)
		c.RecordFailed(at(5))
	}
	// Intervals 6-7: total outage.
	for iv := 6; iv < 8; iv++ {
		for k := 0; k < 10; k++ {
			c.RecordFailed(at(iv))
		}
	}
	// Interval 8: ops succeed again but violate the SLA — not yet healthy.
	for k := 0; k < 10; k++ {
		c.Record(at(8), 500)
	}
	// Intervals 9+: back to the pre-fault band.
	for iv := 9; iv < 9+healthyTail; iv++ {
		for k := 0; k < 10; k++ {
			c.Record(at(iv), 50)
		}
	}
	return c.Snapshot()
}

func TestRecoveryStats(t *testing.T) {
	s := synthSnapshot(3)
	rec := s.Recovery(500, 800, 0.25)

	if rec.FailedOps != 25 {
		t.Fatalf("failed ops = %d, want 25", rec.FailedOps)
	}
	// 95 successes out of 120 total operations.
	if want := 95.0 / 120.0; math.Abs(rec.Availability-want) > 1e-12 {
		t.Fatalf("availability = %v, want %v", rec.Availability, want)
	}
	if want := (25.0 / 120.0) / 0.25; math.Abs(rec.ErrorBudgetBurn-want) > 1e-12 {
		t.Fatalf("budget burn = %v, want %v", rec.ErrorBudgetBurn, want)
	}
	if rec.BaselineViolationRate != 0 {
		t.Fatalf("baseline = %v, want 0", rec.BaselineViolationRate)
	}
	if rec.PeakViolationRate != 1 {
		t.Fatalf("peak = %v, want 1 (outage intervals)", rec.PeakViolationRate)
	}
	if !rec.Recovered {
		t.Fatal("not recovered despite three healthy tail intervals")
	}
	// First healthy interval starts at 900; fault ended at 800.
	if rec.TimeToRecoverNs != 100 {
		t.Fatalf("time to recover = %d, want 100", rec.TimeToRecoverNs)
	}
}

func TestRecoveryNeverRecovers(t *testing.T) {
	// Only two healthy intervals: recoveredSustain demands three.
	rec := synthSnapshot(2).Recovery(500, 800, 0)
	if rec.Recovered {
		t.Fatal("recovered with an unsustained healthy streak")
	}
	if rec.TimeToRecoverNs != -1 {
		t.Fatalf("time to recover = %d, want -1 sentinel", rec.TimeToRecoverNs)
	}
	// The default error budget kicks in when the caller passes 0.
	if want := (25.0 / 110.0) / DefaultErrorBudget; math.Abs(rec.ErrorBudgetBurn-want) > 1e-9 {
		t.Fatalf("budget burn = %v, want default-budget %v", rec.ErrorBudgetBurn, want)
	}
}

func TestRecoveryCleanRun(t *testing.T) {
	// A failure-free run: availability 1, immediate recovery after the
	// (empty) fault window.
	c := NewCollector(CollectorConfig{IntervalNs: 100, SLANs: 100})
	for iv := 0; iv < 10; iv++ {
		for k := 0; k < 10; k++ {
			c.Record(int64(iv)*100+10, 50)
		}
	}
	s := c.Snapshot()
	if s.Fails != nil || s.Failed != 0 {
		t.Fatal("clean run grew a fail series")
	}
	rec := s.Recovery(300, 400, 0)
	if rec.Availability != 1 || rec.ErrorBudgetBurn != 0 || rec.FailedOps != 0 {
		t.Fatalf("clean run recovery: %+v", rec)
	}
	if !rec.Recovered || rec.TimeToRecoverNs != 0 {
		t.Fatalf("clean run should recover instantly: recovered=%v ttr=%d",
			rec.Recovered, rec.TimeToRecoverNs)
	}
}
