package metrics

import "fmt"

// BandLevel classifies a completed query's latency relative to the SLA
// threshold. The paper's Figure 1c uses two categories (within SLA /
// violating SLA) and suggests "increasing the number of bands and
// color-coding them appropriately (e.g., green-yellow-orange-red)".
type BandLevel int

// Band levels from best to worst. Green is within half the SLA, Yellow
// within the SLA, Orange within 2x the SLA, Red beyond that.
const (
	Green BandLevel = iota
	Yellow
	Orange
	Red
	numLevels
)

// String returns the color name.
func (b BandLevel) String() string {
	switch b {
	case Green:
		return "green"
	case Yellow:
		return "yellow"
	case Orange:
		return "orange"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("BandLevel(%d)", int(b))
	}
}

// ClassifyLatency maps a latency to its band for the given SLA threshold.
func ClassifyLatency(latency, sla int64) BandLevel {
	switch {
	case latency <= sla/2:
		return Green
	case latency <= sla:
		return Yellow
	case latency <= 2*sla:
		return Orange
	default:
		return Red
	}
}

// Interval is one latency band of Figure 1c: the queries completed during
// one time slice, split by SLA outcome.
type Interval struct {
	Start     int64 // ns since run start
	Completed int64 // total queries completed in the interval
	WithinSLA int64 // completed within the SLA threshold
	Violated  int64 // completed but over the SLA threshold
	ByLevel   [4]int64
	// OverSLATime is the sum over violated queries of (latency - SLA),
	// feeding the paper's adjustment-speed single-value metric.
	OverSLATime int64
}

// BandTracker accumulates Figure 1c latency bands at a fixed interval
// width (the paper suggests 1 s or 10 s intervals).
type BandTracker struct {
	sla       int64
	width     int64
	intervals []Interval
}

// NewBandTracker returns a tracker with the given SLA threshold and
// interval width, both in nanoseconds.
func NewBandTracker(sla, width int64) *BandTracker {
	if sla <= 0 || width <= 0 {
		panic("metrics: NewBandTracker with non-positive sla or width")
	}
	return &BandTracker{sla: sla, width: width}
}

// SLA returns the tracker's SLA threshold in nanoseconds.
func (bt *BandTracker) SLA() int64 { return bt.sla }

// Width returns the interval width in nanoseconds.
func (bt *BandTracker) Width() int64 { return bt.width }

// Record accounts a query that completed at time t with the given latency.
// Completions may arrive out of interval order (concurrent workers).
func (bt *BandTracker) Record(t, latency int64) {
	if t < 0 {
		t = 0
	}
	idx := int(t / bt.width)
	for len(bt.intervals) <= idx {
		bt.intervals = append(bt.intervals, Interval{
			Start: int64(len(bt.intervals)) * bt.width,
		})
	}
	iv := &bt.intervals[idx]
	iv.Completed++
	lvl := ClassifyLatency(latency, bt.sla)
	iv.ByLevel[lvl]++
	if latency <= bt.sla {
		iv.WithinSLA++
	} else {
		iv.Violated++
		iv.OverSLATime += latency - bt.sla
	}
}

// Intervals returns the recorded bands in time order. The returned slice is
// owned by the tracker; callers must not modify it.
func (bt *BandTracker) Intervals() []Interval { return bt.intervals }

// ViolationRate returns the overall fraction of completed queries that
// violated the SLA.
func (bt *BandTracker) ViolationRate() float64 {
	var done, bad int64
	for _, iv := range bt.intervals {
		done += iv.Completed
		bad += iv.Violated
	}
	if done == 0 {
		return 0
	}
	return float64(bad) / float64(done)
}

// WorstInterval returns the interval with the highest violation count and
// true, or a zero Interval and false when empty.
func (bt *BandTracker) WorstInterval() (Interval, bool) {
	if len(bt.intervals) == 0 {
		return Interval{}, false
	}
	worst := bt.intervals[0]
	for _, iv := range bt.intervals[1:] {
		if iv.Violated > worst.Violated {
			worst = iv
		}
	}
	return worst, true
}

// AdjustmentSpeed is the paper's single-value adjustment-speed metric: "the
// sum of query times above the SLA threshold over the first N queries after
// a distribution change". latencies must be the per-query latencies in
// completion order starting at the distribution change; n bounds how many
// are considered.
func AdjustmentSpeed(latencies []int64, sla int64, n int) int64 {
	if n > len(latencies) {
		n = len(latencies)
	}
	var sum int64
	for _, l := range latencies[:n] {
		if l > sla {
			sum += l - sla
		}
	}
	return sum
}

// CalibrateSLA implements the paper's calibration rule: "the SLA threshold
// should ideally be determined based on a baseline system's query latency
// statistics on the same hardware and workload distribution". It returns
// the baseline's q-quantile latency scaled by headroom (e.g. q=0.99,
// headroom=2 gives twice the baseline p99).
func CalibrateSLA(baseline *Histogram, q, headroom float64) int64 {
	v := float64(baseline.Quantile(q)) * headroom
	if v < 1 {
		v = 1
	}
	return int64(v)
}
