package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 16; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != 15 || h.Count() != 16 {
		t.Fatalf("small-value bookkeeping: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
	if h.Mean() != 7.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramQuantileRelativeError(t *testing.T) {
	r := stats.NewRNG(1)
	h := NewHistogram()
	var raw []int64
	for i := 0; i < 50000; i++ {
		// Latencies from 100ns to ~100ms, lognormal-ish.
		v := int64(100 * math.Exp(r.NormFloat64()*2+4))
		raw = append(raw, v)
		h.Record(v)
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		exact := raw[int(q*float64(len(raw)))]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		if relErr > 0.10 {
			t.Fatalf("q=%v: got %d, exact %d, rel err %v", q, got, exact, relErr)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		h := NewHistogram()
		for i := 0; i < 1000; i++ {
			h.Record(int64(r.Uint64() % 1e9))
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	h.Record(2000)
	if h.Quantile(0) != 1000 || h.Quantile(1) != 2000 {
		t.Fatalf("quantile edges: %d %d", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative value not clamped: min=%d", h.Min())
	}
}

func TestHistogramCountAbove(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(1000) // well below
	}
	for i := 0; i < 25; i++ {
		h.Record(1_000_000) // well above
	}
	got := h.CountAbove(10_000)
	if got != 25 {
		t.Fatalf("CountAbove = %d, want 25", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(int64(i) * 100)
		b.Record(int64(i)*100 + 1_000_000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() < 1_000_000 {
		t.Fatal("merge lost max")
	}
	a.Merge(nil) // must not panic
}

func TestHistogramMergeMismatchedLayout(t *testing.T) {
	// A histogram with a foreign bucket layout must be rejected loudly:
	// folding its counts positionally would silently misattribute
	// latencies instead of failing.
	h := NewHistogram()
	h.Record(500)
	other := &Histogram{counts: make([]uint64, 8), subBuckets: 4}
	other.counts[2] = 3
	other.total = 3
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched-layout merge did not panic")
		}
		if h.Count() != 1 {
			t.Fatalf("failed merge mutated receiver: count = %d", h.Count())
		}
	}()
	h.Merge(other)
}

func TestHistogramMergeEmptyMismatchIgnored(t *testing.T) {
	// An empty histogram carries no counts to misattribute, so merging it
	// stays a no-op regardless of layout (the nil/empty fast path).
	h := NewHistogram()
	h.Record(500)
	h.Merge(&Histogram{counts: make([]uint64, 8), subBuckets: 4})
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(5000)
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset incomplete")
	}
	h.Record(77)
	if h.Min() != 77 || h.Max() != 77 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestHistogramStringNonEmpty(t *testing.T) {
	h := NewHistogram()
	h.Record(123456)
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBucketRoundTrip(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{0, 1, 15, 16, 17, 255, 256, 1 << 20, 1<<40 + 12345} {
		b := h.bucketOf(v)
		lo := h.bucketLow(b)
		hi := h.bucketLow(b + 1)
		if v < lo || v >= hi {
			t.Fatalf("value %d not in bucket [%d,%d)", v, lo, hi)
		}
	}
}
