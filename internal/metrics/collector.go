package metrics

// Collector is the one measurement pipeline shared by every execution
// engine (virtual-clock runner, SQL runner, real-time driver, network
// driver): it owns the Figure 1 quadruple — Timeline (1a), CumCurve (1b),
// BandTracker (1c), and the overall latency Histogram — and implements the
// paper's deferred SLA calibration exactly once.
//
// Completions enter through Record(done, latency). The timeline, curve,
// and histogram account every completion immediately; band tracking is
// deferred while the SLA threshold is unknown: the first CalibrateAfter
// samples are buffered, the threshold is derived from their latency
// distribution via CalibrateSLA, and the buffer is replayed into the
// tracker so no completion is lost. A fixed SLA (Config.SLANs > 0) starts
// band tracking on the first completion.
//
// Collector is not safe for concurrent use; engines with concurrent
// workers merge per-worker samples into completion order first (see
// internal/driver).
type Collector struct {
	cfg       CollectorConfig
	timeline  *Timeline
	cum       *CumCurve
	latency   *Histogram
	bands     *BandTracker
	sla       int64
	completed int64
	failed    int64
	fails     *FailSeries
	pending   []pendingSample
	session   *SessionTracker
}

// pendingSample is a completion parked while the SLA is uncalibrated.
type pendingSample struct{ t, lat int64 }

// CollectorConfig configures a Collector. IntervalNs is required; the
// remaining fields default to the paper's calibration rule (first 1000
// samples, 20x their median, 1ms fallback when there are no samples).
type CollectorConfig struct {
	// IntervalNs is the timeline/band reporting interval width.
	IntervalNs int64
	// SLANs fixes the SLA threshold; 0 defers to calibration.
	SLANs int64
	// CalibrateAfter is how many completions are buffered before the SLA
	// is calibrated from their latencies (default 1000).
	CalibrateAfter int
	// CalibrateQuantile and CalibrateHeadroom parameterize CalibrateSLA
	// (defaults 0.5 and 20: 20x the median).
	CalibrateQuantile float64
	CalibrateHeadroom float64
	// SessionBudgetNs is the per-session SLA budget applied when the
	// engine marks session boundaries via BeginSession (0: sessions are
	// counted without a budget). It has no effect until BeginSession is
	// called, so non-session runs snapshot exactly as before.
	SessionBudgetNs int64
}

// NewCollector returns a collector for the given configuration.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.IntervalNs <= 0 {
		panic("metrics: NewCollector with non-positive interval")
	}
	if cfg.CalibrateAfter <= 0 {
		cfg.CalibrateAfter = 1000
	}
	if cfg.CalibrateQuantile <= 0 {
		cfg.CalibrateQuantile = 0.5
	}
	if cfg.CalibrateHeadroom <= 0 {
		cfg.CalibrateHeadroom = 20
	}
	return &Collector{
		cfg:      cfg,
		timeline: NewTimeline(cfg.IntervalNs),
		cum:      &CumCurve{},
		latency:  NewHistogram(),
		sla:      cfg.SLANs,
	}
}

// BeginSession marks a session boundary: the next completions belong to a
// session whose first operation arrived at the given time. The tracker is
// created lazily, so collectors on non-session workloads carry none and
// their snapshots are unchanged.
func (c *Collector) BeginSession(arrive int64) {
	if c.session == nil {
		c.session = NewSessionTracker(c.cfg.SessionBudgetNs)
	}
	c.session.Begin(arrive)
}

// Record accounts one completed operation at time done (ns since run
// start) with the given latency. Completions must arrive in non-decreasing
// done order (the CumCurve contract).
func (c *Collector) Record(done, latency int64) {
	c.completed++
	if c.session != nil {
		c.session.Observe(done)
	}
	c.cum.Add(done, c.completed)
	c.timeline.Record(done, latency)
	c.latency.Record(latency)
	if c.bands != nil {
		c.bands.Record(done, latency)
		return
	}
	c.pending = append(c.pending, pendingSample{done, latency})
	if c.sla == 0 && len(c.pending) == c.cfg.CalibrateAfter {
		c.sla = c.calibrateFromPending()
	}
	if c.sla > 0 {
		c.startBands()
	}
}

// RecordFailed accounts one operation that completed as an error at time
// done. Failed operations held the server but produced no valid latency:
// they are excluded from the timeline, curve, histogram, and bands, and
// tallied in a per-interval failure series instead — the availability
// input of the recovery metrics. Allocation is deferred to first use so a
// failure-free run's snapshot is unchanged.
func (c *Collector) RecordFailed(done int64) {
	c.failed++
	if c.fails == nil {
		c.fails = NewFailSeries(c.cfg.IntervalNs)
	}
	c.fails.Record(done)
}

// Calibrate forces SLA calibration from the samples buffered so far and
// starts band tracking, replaying the buffer. Engines call it at natural
// boundaries (the virtual runner at the end of phase 0) when the run may
// be shorter than the calibration window. It is a no-op once band tracking
// has started.
func (c *Collector) Calibrate() {
	if c.bands != nil {
		return
	}
	if c.sla == 0 {
		c.sla = c.calibrateFromPending()
	}
	c.startBands()
}

// calibrateFromPending derives the SLA threshold from the buffered
// completions per the paper's baseline-statistics rule, falling back to
// 1ms when there are none.
func (c *Collector) calibrateFromPending() int64 {
	if len(c.pending) == 0 {
		return 1_000_000 // 1ms fallback
	}
	h := NewHistogram()
	for _, p := range c.pending {
		h.Record(p.lat)
	}
	return CalibrateSLA(h, c.cfg.CalibrateQuantile, c.cfg.CalibrateHeadroom)
}

// startBands creates the band tracker and replays the parked completions.
func (c *Collector) startBands() {
	c.bands = NewBandTracker(c.sla, c.cfg.IntervalNs)
	for _, p := range c.pending {
		c.bands.Record(p.t, p.lat)
	}
	c.pending = nil
}

// SLA returns the current SLA threshold (0 while uncalibrated).
func (c *Collector) SLA() int64 { return c.sla }

// Completed returns the number of recorded completions.
func (c *Collector) Completed() int64 { return c.completed }

// Snapshot finalizes the pipeline — calibrating and replaying if band
// tracking has not started — and returns the metric quadruple. Further
// Records keep feeding the same underlying structures, so engines
// snapshot once, when the run is over.
func (c *Collector) Snapshot() Snapshot {
	c.Calibrate()
	s := Snapshot{
		Timeline:   c.timeline,
		Cumulative: c.cum,
		Bands:      c.bands,
		Latency:    c.latency,
		SLANs:      c.sla,
		Completed:  c.completed,
		Failed:     c.failed,
		Fails:      c.fails,
	}
	if c.session != nil {
		s.Sessions = c.session.Stats()
	}
	return s
}

// Snapshot is the finalized measurement quadruple plus the SLA threshold
// and completion count — the common core of every engine's result type
// (core.Result, core.SQLRunResult, driver.Result), consumed by
// report.ResultView.
type Snapshot struct {
	// Timeline backs Figure 1a: per-interval throughput and latency.
	Timeline *Timeline
	// Cumulative backs Figure 1b: completions over time.
	Cumulative *CumCurve
	// Bands backs Figure 1c: SLA latency bands.
	Bands *BandTracker
	// Latency is the overall latency histogram.
	Latency *Histogram
	// SLANs is the SLA threshold used (fixed or calibrated).
	SLANs int64
	// Completed is the number of operations accounted.
	Completed int64
	// Failed is the number of operations that completed as errors
	// (RecordFailed); they are excluded from every latency structure.
	Failed int64
	// Fails is the per-interval failure series (nil when no op failed).
	Fails *FailSeries
	// Sessions is the per-session SLA digest (nil unless the engine
	// marked session boundaries via BeginSession).
	Sessions *SessionStats
}
