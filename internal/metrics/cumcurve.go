package metrics

import (
	"sort"
)

// CumCurve is the cumulative-queries-completed-over-time curve of Figure 1b.
// The paper: "the slope of the curve is the throughput, and it is easy to
// see the impact of a change". Points are (time ns, completed count) and
// must be appended in non-decreasing time order (Add enforces it).
type CumCurve struct {
	times  []int64 // completion timestamps, ns since run start
	counts []int64 // cumulative completions at that timestamp
}

// Add records that by time t (ns since run start) a total of the given
// number of queries had completed. Calls must have non-decreasing t; a
// regression panics since it indicates a measurement bug.
func (c *CumCurve) Add(t int64, completed int64) {
	if n := len(c.times); n > 0 && t < c.times[n-1] {
		panic("metrics: CumCurve.Add with decreasing time")
	}
	c.times = append(c.times, t)
	c.counts = append(c.counts, completed)
}

// AddCompletion records a single query completion at time t; the cumulative
// count is maintained internally.
func (c *CumCurve) AddCompletion(t int64) {
	var next int64 = 1
	if n := len(c.counts); n > 0 {
		next = c.counts[n-1] + 1
	}
	c.Add(t, next)
}

// Len returns the number of recorded points.
func (c *CumCurve) Len() int { return len(c.times) }

// Total returns the final cumulative count (0 when empty).
func (c *CumCurve) Total() int64 {
	if len(c.counts) == 0 {
		return 0
	}
	return c.counts[len(c.counts)-1]
}

// Duration returns the time of the last point (0 when empty).
func (c *CumCurve) Duration() int64 {
	if len(c.times) == 0 {
		return 0
	}
	return c.times[len(c.times)-1]
}

// At returns the cumulative count at time t (step interpolation: the count
// of the latest point with time <= t).
func (c *CumCurve) At(t int64) int64 {
	idx := sort.Search(len(c.times), func(i int) bool { return c.times[i] > t })
	if idx == 0 {
		return 0
	}
	return c.counts[idx-1]
}

// Throughput returns the overall average throughput in queries/second.
func (c *CumCurve) Throughput() float64 {
	d := c.Duration()
	if d == 0 {
		return 0
	}
	return float64(c.Total()) / (float64(d) / 1e9)
}

// area returns the integral of the step curve from 0 to horizon, in
// query·ns units.
func (c *CumCurve) area(horizon int64) float64 {
	var total float64
	var prevT, prevC int64
	for i := range c.times {
		t := c.times[i]
		if t > horizon {
			t = horizon
		}
		total += float64(prevC) * float64(t-prevT)
		prevT, prevC = t, c.counts[i]
		if c.times[i] >= horizon {
			return total
		}
	}
	total += float64(prevC) * float64(horizon-prevT)
	return total
}

// AreaVsIdeal is the paper's single-value derivation from Figure 1b: the
// area difference between an ideal system that completes the same total
// work at constant throughput over the same duration and the measured
// curve, normalized by the ideal area. 0 means the system tracked the
// ideal perfectly; positive values mean the system lagged (slow start,
// stalls) and caught up later; the magnitude is the fraction of ideal
// query·time lost. Range is [-1, 1] in practice.
func (c *CumCurve) AreaVsIdeal() float64 {
	d := c.Duration()
	total := c.Total()
	if d == 0 || total == 0 {
		return 0
	}
	idealArea := 0.5 * float64(total) * float64(d) // triangle under the constant-slope line
	measured := c.area(d)
	if idealArea == 0 {
		return 0
	}
	return (idealArea - measured) / idealArea
}

// AreaBetween compares two systems over the common horizon (the shorter of
// the two durations), returning (area(a) - area(b)) normalized by the
// larger of the two areas: positive means a completed more query·time than
// b (a is ahead), negative means b is ahead. This is the paper's
// "area difference between the two systems" single-value comparison.
func AreaBetween(a, b *CumCurve) float64 {
	h := a.Duration()
	if bd := b.Duration(); bd < h {
		h = bd
	}
	if h == 0 {
		return 0
	}
	aa, ab := a.area(h), b.area(h)
	den := aa
	if ab > den {
		den = ab
	}
	if den == 0 {
		return 0
	}
	return (aa - ab) / den
}

// Slope returns the local throughput (queries/second) over the window
// [t-window, t].
func (c *CumCurve) Slope(t, window int64) float64 {
	if window <= 0 {
		return 0
	}
	lo := t - window
	if lo < 0 {
		lo = 0
	}
	dq := c.At(t) - c.At(lo)
	return float64(dq) / (float64(t-lo) / 1e9)
}

// Downsample returns an at-most-n-point copy of the curve, preserving the
// first and last points, for plotting.
func (c *CumCurve) Downsample(n int) *CumCurve {
	if n <= 0 || len(c.times) <= n {
		out := &CumCurve{}
		out.times = append(out.times, c.times...)
		out.counts = append(out.counts, c.counts...)
		return out
	}
	out := &CumCurve{}
	stride := float64(len(c.times)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		idx := int(float64(i) * stride)
		out.times = append(out.times, c.times[idx])
		out.counts = append(out.counts, c.counts[idx])
	}
	return out
}

// Points invokes f for each (time, cumulative count) pair in order.
func (c *CumCurve) Points(f func(t int64, count int64)) {
	for i := range c.times {
		f(c.times[i], c.counts[i])
	}
}
