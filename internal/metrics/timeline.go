package metrics

import "repro/internal/stats"

// Timeline tracks per-interval throughput and latency over a run, the raw
// material for Figure 1a box plots ("descriptive statistics" of throughput
// per workload/data distribution) and for adaptation-time detection.
type Timeline struct {
	width     int64
	completed []int64      // per-interval completion counts
	lat       []*Histogram // per-interval latency histograms (lazy)
}

// NewTimeline returns a timeline with the given interval width in
// nanoseconds.
func NewTimeline(width int64) *Timeline {
	if width <= 0 {
		panic("metrics: NewTimeline with non-positive width")
	}
	return &Timeline{width: width}
}

// Width returns the interval width in nanoseconds.
func (tl *Timeline) Width() int64 { return tl.width }

// Record accounts a completion at time t with the given latency.
func (tl *Timeline) Record(t, latency int64) {
	if t < 0 {
		t = 0
	}
	idx := int(t / tl.width)
	for len(tl.completed) <= idx {
		tl.completed = append(tl.completed, 0)
		tl.lat = append(tl.lat, nil)
	}
	tl.completed[idx]++
	if tl.lat[idx] == nil {
		tl.lat[idx] = NewHistogram()
	}
	tl.lat[idx].Record(latency)
}

// Intervals returns the number of recorded intervals.
func (tl *Timeline) Intervals() int { return len(tl.completed) }

// ThroughputSeries returns per-interval throughput in queries/second.
func (tl *Timeline) ThroughputSeries() []float64 {
	out := make([]float64, len(tl.completed))
	secs := float64(tl.width) / 1e9
	for i, c := range tl.completed {
		out[i] = float64(c) / secs
	}
	return out
}

// ThroughputSummary returns the box-plot summary of per-interval throughput
// — exactly what one box of Figure 1a reports for one workload/data
// distribution.
func (tl *Timeline) ThroughputSummary() stats.Summary {
	return stats.Summarize(tl.ThroughputSeries())
}

// LatencyQuantileSeries returns the q-quantile latency per interval in
// nanoseconds (0 for empty intervals).
func (tl *Timeline) LatencyQuantileSeries(q float64) []int64 {
	out := make([]int64, len(tl.lat))
	for i, h := range tl.lat {
		if h != nil {
			out[i] = h.Quantile(q)
		}
	}
	return out
}

// MergedLatency returns one histogram merging every interval.
func (tl *Timeline) MergedLatency() *Histogram {
	m := NewHistogram()
	for _, h := range tl.lat {
		if h != nil {
			m.Merge(h)
		}
	}
	return m
}

// AdaptationTime estimates how long after changeAt (ns) the system took to
// return to acceptable throughput: the end of the first interval at or
// after changeAt from which the throughput stays at or above
// recoveryFraction of the pre-change mean throughput for at least
// sustainIntervals consecutive intervals. It returns the recovery delay in
// nanoseconds and true, or 0 and false if the system never recovers within
// the recorded timeline or there is no pre-change baseline.
//
// This operationalizes the paper's "capture the time a system takes to
// adapt to a new workload".
func (tl *Timeline) AdaptationTime(changeAt int64, recoveryFraction float64, sustainIntervals int) (int64, bool) {
	if sustainIntervals < 1 {
		sustainIntervals = 1
	}
	changeIdx := int(changeAt / tl.width)
	if changeIdx <= 0 || changeIdx >= len(tl.completed) {
		return 0, false
	}
	// Pre-change mean throughput (counts/interval suffice, same scale).
	var pre float64
	for _, c := range tl.completed[:changeIdx] {
		pre += float64(c)
	}
	pre /= float64(changeIdx)
	if pre == 0 {
		return 0, false
	}
	need := pre * recoveryFraction
	run := 0
	for i := changeIdx; i < len(tl.completed); i++ {
		if float64(tl.completed[i]) >= need {
			run++
			if run >= sustainIntervals {
				recoveredAt := int64(i-sustainIntervals+2) * tl.width
				d := recoveredAt - changeAt
				if d < 0 {
					d = 0
				}
				return d, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

// DipDepth returns the worst relative throughput drop after changeAt
// compared to the pre-change mean: 0 means no drop, 1 means a full stall.
// Returns 0 if there is no baseline or no post-change data.
func (tl *Timeline) DipDepth(changeAt int64) float64 {
	changeIdx := int(changeAt / tl.width)
	if changeIdx <= 0 || changeIdx >= len(tl.completed) {
		return 0
	}
	var pre float64
	for _, c := range tl.completed[:changeIdx] {
		pre += float64(c)
	}
	pre /= float64(changeIdx)
	if pre == 0 {
		return 0
	}
	worst := 0.0
	for _, c := range tl.completed[changeIdx:] {
		drop := 1 - float64(c)/pre
		if drop > worst {
			worst = drop
		}
	}
	if worst > 1 {
		worst = 1
	}
	return worst
}
