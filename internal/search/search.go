// Package search provides allocation-free, branch-predictable binary
// search kernels over sorted uint64 slices — the last-mile primitives of
// every index hot path in the benchmark.
//
// The generic sort.Search costs a non-inlinable closure call per probe.
// At SOSD scale (100M+ keys, "Benchmarking Learned Indexes") the
// last-mile search dominates lookup latency, so these kernels are written
// to inline into their callers and run the tightest possible halving loop.
// Two formulations were measured head-to-head (see BenchmarkBoundedWindow
// and the BenchmarkLarge* tier): a CMOV/branchless variant that
// conditionally advances a base pointer, and the branchy inline form used
// here. The branchy form wins on cold, large windows — the predicted
// branch lets the CPU speculate past the comparison and overlap the next
// probe's cache miss, while a conditional move serializes the load chain
// — and ties on warm, small windows, so it is the one we keep. An
// interpolation kernel (InterpolateLowerBound) is also provided for
// model-bounded windows, but measurement showed its 128-bit division
// probes losing to the plain loop at every window size up to 65536 on the
// benchmark hardware, so the index hot paths do not use it.
//
// Every kernel is semantically pinned to its sort.Search formulation:
// LowerBound(a, k) == sort.Search(len(a), func(i) bool { return a[i] >= k })
// and UpperBound(a, k) == sort.Search(len(a), func(i) bool { return a[i] > k }),
// including empty slices, duplicate keys, and out-of-range keys. The
// property and fuzz tests in this package enforce index-exact equivalence,
// which is what keeps the virtual-clock golden outputs byte-identical
// after the hot paths were rewritten.
package search

import "math/bits"

// LowerBound returns the smallest index i in [0, len(a)] such that
// a[i] >= key (len(a) when no such element exists). a must be sorted
// ascending. Equivalent to sort.SearchUint64s-style lower-bound semantics:
// with duplicates it returns the first occurrence.
func LowerBound(a []uint64, key uint64) int {
	// Closure-free halving loop. The data-dependent branch is deliberate:
	// on out-of-cache windows the branch predictor's speculation overlaps
	// the next probe's memory latency, which beats a CMOV formulation
	// whose loads form a serial dependency chain (measured on the
	// BenchmarkLarge* tier: ~12% faster cold lookups at 10M keys).
	lo, hi := 0, len(a)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if a[m] < key {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// UpperBound returns the smallest index i in [0, len(a)] such that
// a[i] > key (len(a) when no such element exists). a must be sorted
// ascending. With duplicates it returns one past the last occurrence.
func UpperBound(a []uint64, key uint64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if a[m] <= key {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// LowerBoundRange returns the smallest index i in [lo, hi] such that
// a[i] >= key (hi when no such element exists in a[lo:hi]). It is
// LowerBound restricted to the window [lo, hi) — the bounded last-mile
// search of a learned index whose model guarantees the answer lies within
// its error window. lo and hi must satisfy 0 <= lo <= hi <= len(a).
func LowerBoundRange(a []uint64, lo, hi int, key uint64) int {
	return lo + LowerBound(a[lo:hi], key)
}

// interpolationRounds bounds how many interpolation probes
// InterpolateLowerBound spends before falling back to the binary-search
// loop. On near-linear data (exactly where a learned model routes tight
// windows) each probe lands within a few slots of the answer; on
// adversarial data the cap keeps the worst case at
// interpolationRounds + log2(window).
const interpolationRounds = 3

// interpolationMin is the window size below which interpolation is not
// worth the division; the plain loop resolves small windows faster.
const interpolationMin = 32

// InterpolateLowerBound returns the same index as LowerBoundRange(a, lo,
// hi, key): the smallest i in [lo, hi] with a[i] >= key. It first narrows
// the window with up to interpolationRounds interpolation probes — using
// the key's position between the window endpoints to guess its slot, the
// natural refinement inside a learned index's error window where the data
// is locally near-linear — then finishes with LowerBound on what remains.
//
// The invariant maintained by every probe m in [lo, hi) is the classic
// lower-bound one (a[m] < key ⇒ answer > m; a[m] >= key ⇒ answer <= m),
// so the returned index is exact regardless of how the probes are chosen.
func InterpolateLowerBound(a []uint64, lo, hi int, key uint64) int {
	for round := 0; round < interpolationRounds && hi-lo >= interpolationMin; round++ {
		first, last := a[lo], a[hi-1]
		if key <= first {
			// Answer is lo unless a[lo] < key, which key <= first excludes.
			return lo
		}
		if key > last {
			return hi
		}
		// m = lo + (key-first)/(last-first) * (hi-1-lo), computed in
		// 128-bit so a full-domain key span cannot overflow.
		span := last - first // > 0: key <= last and key > first imply last > first
		h, l := bits.Mul64(key-first, uint64(hi-1-lo))
		off, _ := bits.Div64(h%span, l, span)
		m := lo + int(off)
		// Clamp into the open probe range; both bounds stay probes that
		// shrink the window because the equal-endpoint cases returned above.
		if m <= lo {
			m = lo + 1
		}
		if m >= hi-1 {
			m = hi - 2
		}
		if a[m] < key {
			lo = m + 1
		} else {
			hi = m + 1 // answer <= m, keep m in the window
		}
	}
	return lo + LowerBound(a[lo:hi], key)
}
