package search

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// refLowerBound is the sort.Search formulation every kernel is pinned to.
func refLowerBound(a []uint64, key uint64) int {
	return sort.Search(len(a), func(i int) bool { return a[i] >= key })
}

func refUpperBound(a []uint64, key uint64) int {
	return sort.Search(len(a), func(i int) bool { return a[i] > key })
}

// sortedCase generates a random sorted slice with duplicates: small strides
// keep duplicate runs common, and the offset exercises non-zero minima.
func sortedCase(rng *rand.Rand, n int) []uint64 {
	a := make([]uint64, n)
	cur := rng.Uint64() % 1000
	for i := range a {
		a[i] = cur
		cur += rng.Uint64() % 3 // 1/3 chance of duplicate
	}
	return a
}

// probeKeys returns the interesting keys for a sorted slice: every element,
// every element ±1, and the extremes of the domain.
func probeKeys(a []uint64) []uint64 {
	keys := []uint64{0, 1, ^uint64(0), ^uint64(0) - 1}
	for _, v := range a {
		keys = append(keys, v)
		if v > 0 {
			keys = append(keys, v-1)
		}
		keys = append(keys, v+1)
	}
	return keys
}

func TestLowerBoundEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 7, 8, 31, 32, 100, 1000} {
		for trial := 0; trial < 20; trial++ {
			a := sortedCase(rng, n)
			for _, k := range probeKeys(a) {
				if got, want := LowerBound(a, k), refLowerBound(a, k); got != want {
					t.Fatalf("LowerBound(%v, %d) = %d, want %d", a, k, got, want)
				}
				if got, want := UpperBound(a, k), refUpperBound(a, k); got != want {
					t.Fatalf("UpperBound(%v, %d) = %d, want %d", a, k, got, want)
				}
			}
		}
	}
}

func TestLowerBoundAllEqual(t *testing.T) {
	a := []uint64{5, 5, 5, 5, 5, 5, 5}
	if got := LowerBound(a, 5); got != 0 {
		t.Fatalf("LowerBound all-equal = %d, want 0", got)
	}
	if got := UpperBound(a, 5); got != len(a) {
		t.Fatalf("UpperBound all-equal = %d, want %d", got, len(a))
	}
	if got := LowerBound(a, 4); got != 0 {
		t.Fatalf("LowerBound below = %d, want 0", got)
	}
	if got := LowerBound(a, 6); got != len(a) {
		t.Fatalf("LowerBound above = %d, want %d", got, len(a))
	}
}

func TestLowerBoundRangeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a := sortedCase(rng, 200)
		for sub := 0; sub < 20; sub++ {
			lo := rng.Intn(len(a) + 1)
			hi := lo + rng.Intn(len(a)+1-lo)
			for _, k := range []uint64{a[0], a[len(a)-1], a[(lo+hi)/2%len(a)], 0, ^uint64(0)} {
				want := lo + refLowerBound(a[lo:hi], k)
				if got := LowerBoundRange(a, lo, hi, k); got != want {
					t.Fatalf("LowerBoundRange(lo=%d, hi=%d, %d) = %d, want %d", lo, hi, k, got, want)
				}
				if got := InterpolateLowerBound(a, lo, hi, k); got != want {
					t.Fatalf("InterpolateLowerBound(lo=%d, hi=%d, %d) = %d, want %d", lo, hi, k, got, want)
				}
			}
		}
	}
}

// TestInterpolateExtremeSkew exercises the interpolation path on data where
// the linear guess is maximally wrong: one huge outlier at each end, and
// full-domain spans that stress the 128-bit midpoint arithmetic.
func TestInterpolateExtremeSkew(t *testing.T) {
	a := make([]uint64, 200)
	for i := 1; i < len(a)-1; i++ {
		a[i] = uint64(i) // dense middle
	}
	a[0] = 0
	a[len(a)-1] = ^uint64(0) // full-domain span
	for _, k := range probeKeys(a) {
		want := refLowerBound(a, k)
		if got := InterpolateLowerBound(a, 0, len(a), k); got != want {
			t.Fatalf("InterpolateLowerBound(skew, %d) = %d, want %d", k, got, want)
		}
	}
	// Window entirely of duplicates: span == 0 must not divide.
	dup := []uint64{9, 9, 9, 9, 9, 9, 9, 9, 9, 9}
	for _, k := range []uint64{8, 9, 10} {
		want := refLowerBound(dup, k)
		if got := InterpolateLowerBound(dup, 0, len(dup), k); got != want {
			t.Fatalf("InterpolateLowerBound(dup, %d) = %d, want %d", k, got, want)
		}
	}
}

func TestInterpolateEmptyAndTinyWindows(t *testing.T) {
	a := []uint64{1, 3, 5, 7, 9, 11, 13}
	for lo := 0; lo <= len(a); lo++ {
		for hi := lo; hi <= len(a); hi++ {
			for k := uint64(0); k <= 14; k++ {
				want := lo + refLowerBound(a[lo:hi], k)
				if got := InterpolateLowerBound(a, lo, hi, k); got != want {
					t.Fatalf("InterpolateLowerBound(a, %d, %d, %d) = %d, want %d", lo, hi, k, got, want)
				}
			}
		}
	}
}

// FuzzLowerBound cross-checks both bounds against sort.Search on arbitrary
// sorted inputs derived from fuzz bytes.
func FuzzLowerBound(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint64(3))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0, 0, 0, 0}, uint64(0))
	f.Fuzz(func(t *testing.T, raw []byte, key uint64) {
		a := make([]uint64, 0, len(raw))
		var cur uint64
		for _, b := range raw {
			cur += uint64(b) // deltas >= 0 keep it sorted, zeros make dups
			a = append(a, cur)
		}
		if got, want := LowerBound(a, key), refLowerBound(a, key); got != want {
			t.Fatalf("LowerBound(%v, %d) = %d, want %d", a, key, got, want)
		}
		if got, want := UpperBound(a, key), refUpperBound(a, key); got != want {
			t.Fatalf("UpperBound(%v, %d) = %d, want %d", a, key, got, want)
		}
	})
}

// FuzzInterpolateLowerBound cross-checks the interpolating bounded search
// against sort.Search on arbitrary sorted windows.
func FuzzInterpolateLowerBound(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50}, uint64(25), uint8(0), uint8(5))
	f.Add([]byte{0, 255, 255, 255}, uint64(1), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, key uint64, loB, hiB uint8) {
		a := make([]uint64, 0, len(raw))
		var cur uint64
		for _, b := range raw {
			// Large strides stress the interpolation midpoint math.
			cur += uint64(b) << 48
			a = append(a, cur)
		}
		lo, hi := int(loB), int(hiB)
		if lo > len(a) {
			lo = len(a)
		}
		if hi > len(a) {
			hi = len(a)
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		want := lo + refLowerBound(a[lo:hi], key)
		if got := InterpolateLowerBound(a, lo, hi, key); got != want {
			t.Fatalf("InterpolateLowerBound(%v, %d, %d, %d) = %d, want %d", a, lo, hi, key, got, want)
		}
	})
}

// --- Benchmarks: branchless kernels vs the sort.Search formulation --------

var sink int

func benchKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(7))
	a := make([]uint64, n)
	cur := uint64(0)
	for i := range a {
		cur += 1 + rng.Uint64()%16
		a[i] = cur
	}
	return a
}

func BenchmarkLowerBound(b *testing.B) {
	a := benchKeys(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += LowerBound(a, a[(i*16777619)%len(a)])
	}
	sink = s
}

func BenchmarkSortSearch(b *testing.B) {
	a := benchKeys(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		k := a[(i*16777619)%len(a)]
		s += sort.Search(len(a), func(j int) bool { return a[j] >= k })
	}
	sink = s
}

// BenchmarkBoundedWindow compares the last-mile strategies inside a
// learned index's error window, across the window sizes that matter: small
// windows (tight models) must favor the pure branchless loop, huge windows
// (coarse models at 100M+ keys) are where interpolation's division cost
// pays for itself by cutting the probe count.
func BenchmarkBoundedWindow(b *testing.B) {
	a := benchKeys(1 << 20)
	for _, win := range []int{64, 256, 4096, 65536} {
		win := win
		pos := func(i int) (int, int, uint64) {
			p := (i * 16777619) % len(a)
			lo, hi := p-win/2, p+win/2
			if lo < 0 {
				lo = 0
			}
			if hi > len(a) {
				hi = len(a)
			}
			return lo, hi, a[p]
		}
		b.Run(fmt.Sprintf("win=%d/sort.Search", win), func(b *testing.B) {
			b.ReportAllocs()
			s := 0
			for i := 0; i < b.N; i++ {
				lo, hi, k := pos(i)
				s += lo + sort.Search(hi-lo, func(j int) bool { return a[lo+j] >= k })
			}
			sink = s
		})
		b.Run(fmt.Sprintf("win=%d/branchless", win), func(b *testing.B) {
			b.ReportAllocs()
			s := 0
			for i := 0; i < b.N; i++ {
				lo, hi, k := pos(i)
				s += LowerBoundRange(a, lo, hi, k)
			}
			sink = s
		})
		b.Run(fmt.Sprintf("win=%d/interpolate", win), func(b *testing.B) {
			b.ReportAllocs()
			s := 0
			for i := 0; i < b.N; i++ {
				lo, hi, k := pos(i)
				s += InterpolateLowerBound(a, lo, hi, k)
			}
			sink = s
		})
	}
}
