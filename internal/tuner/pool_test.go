package tuner

import (
	"reflect"
	"testing"

	"repro/internal/pager"
)

// skewedPoolScore replays a hot/cold page access pattern (a small hot set
// re-touched between uniform-ish cold sweeps — the pattern that floods
// pure recency policies) against one pool configuration and returns the
// hit ratio penalized by memory footprint, so bigger pools must earn
// their frames.
func skewedPoolScore(t *testing.T, knobs pager.PoolKnobs) float64 {
	t.Helper()
	f, err := pager.Create(pager.NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	pool := pager.NewPool(f, knobs)
	const filePages = 128
	ids := make([]pager.PageID, filePages)
	for i := range ids {
		_, id, err := pool.Alloc(pager.TypeLeaf)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id, false)
		ids[i] = id
	}
	if err := pool.DropCache(); err != nil {
		t.Fatal(err)
	}
	pool.ResetCounters()

	for i := 0; i < 4000; i++ {
		var id pager.PageID
		if i%2 == 0 {
			id = ids[(i/2)%12] // hot set
		} else {
			id = ids[12+(i*13)%116] // cold sweep
		}
		if _, err := pool.Get(id); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id, false)
	}
	return pool.Counters().HitRatio() - 0.002*float64(knobs.Pages)
}

func TestPoolSweepFindsScanResistantPolicy(t *testing.T) {
	res := PoolSweep(func(k pager.PoolKnobs) float64 {
		return skewedPoolScore(t, k)
	})
	if res.Evaluations != len(pager.PoolSpace()) {
		t.Fatalf("sweep evaluated %d of %d configurations",
			res.Evaluations, len(pager.PoolSpace()))
	}

	// On the flooding workload the winning policy must be scan-resistant:
	// plain recency (lru, and its clock approximation) loses the hot set
	// to the cold sweep, while 2Q's probation queue shields it. And the
	// memory penalty must rule out simply buying the whole file: at the
	// biggest pool every policy ties (everything resident), so the sweep
	// only beats it by earning hits with fewer frames.
	if res.Best.Policy != "2q" {
		t.Fatalf("sweep picked %s — flooding did not separate policies: %+v",
			res.Best.Policy, res.Trace)
	}
	if res.Best.Pages == 256 {
		t.Fatalf("sweep bought the whole file (%d pages) despite the memory penalty: %+v",
			res.Best.Pages, res.Trace)
	}

	// The policy gap at the winning size must be measurable.
	lo, hi := 2.0, -2.0
	for _, s := range res.Trace {
		if s.Knobs.Pages != res.Best.Pages {
			continue
		}
		if s.Score < lo {
			lo = s.Score
		}
		if s.Score > hi {
			hi = s.Score
		}
	}
	if hi-lo < 0.01 {
		t.Fatalf("policies indistinguishable at %d pages: span [%v, %v]",
			res.Best.Pages, lo, hi)
	}
}

func TestPoolSweepDeterministic(t *testing.T) {
	eval := func(k pager.PoolKnobs) float64 { return skewedPoolScore(t, k) }
	a := PoolSweep(eval)
	b := PoolSweep(eval)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("pool sweep not deterministic:\n%+v\n%+v", a, b)
	}
}
