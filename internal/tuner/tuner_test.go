package tuner

import (
	"math"
	"testing"

	"repro/internal/kv"
)

// syntheticEval scores knobs with a smooth unimodal function peaking at a
// known optimum, so tuner behaviour is testable without running workloads.
func syntheticEval(k kv.Knobs) float64 {
	score := 1000.0
	score -= math.Abs(math.Log2(float64(k.MemtableCap))-math.Log2(16384)) * 50
	score -= math.Abs(float64(k.MaxRuns)-4) * 30
	score -= math.Abs(math.Log2(float64(k.SparseEvery))-math.Log2(32)) * 20
	score -= math.Abs(float64(k.BloomBitsPerKey)-16) * 10
	return score
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	res := Exhaustive(syntheticEval)
	if res.Evaluations != 144 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	want := kv.Knobs{MemtableCap: 16384, MaxRuns: 4, SparseEvery: 32, BloomBitsPerKey: 16}
	if res.Best != want {
		t.Fatalf("best = %+v", res.Best)
	}
}

func TestHillClimbConvergesOnUnimodal(t *testing.T) {
	truth := Exhaustive(syntheticEval).BestScore
	res := HillClimb(syntheticEval, kv.DefaultKnobs(), 60, 1)
	if res.BestScore < truth-1e-9 {
		t.Fatalf("hill climb best %.1f below optimum %.1f", res.BestScore, truth)
	}
	if res.Evaluations > 60 {
		t.Fatalf("budget exceeded: %d", res.Evaluations)
	}
}

func TestHillClimbRespectsBudget(t *testing.T) {
	calls := 0
	eval := func(k kv.Knobs) float64 { calls++; return syntheticEval(k) }
	res := HillClimb(eval, kv.DefaultKnobs(), 10, 2)
	if calls != res.Evaluations || calls > 10 {
		t.Fatalf("calls=%d evaluations=%d", calls, res.Evaluations)
	}
	if HillClimb(eval, kv.DefaultKnobs(), 0, 1).Evaluations != 0 {
		t.Fatal("zero budget must not evaluate")
	}
}

func TestHillClimbDeterministic(t *testing.T) {
	a := HillClimb(syntheticEval, kv.DefaultKnobs(), 40, 7)
	b := HillClimb(syntheticEval, kv.DefaultKnobs(), 40, 7)
	if a.Best != b.Best || a.BestScore != b.BestScore || len(a.Trace) != len(b.Trace) {
		t.Fatal("hill climb not deterministic")
	}
}

func TestHillClimbBeatsRandomOnAverage(t *testing.T) {
	// Same small budget; hill climbing should match or beat random
	// search on a unimodal surface for most seeds.
	wins := 0
	const trials = 10
	for seed := uint64(0); seed < trials; seed++ {
		h := HillClimb(syntheticEval, kv.DefaultKnobs(), 25, seed)
		r := RandomSearch(syntheticEval, 25, seed)
		if h.BestScore >= r.BestScore {
			wins++
		}
	}
	if wins < trials*6/10 {
		t.Fatalf("hill climb won only %d/%d trials", wins, trials)
	}
}

func TestTraceBestSoFarMonotone(t *testing.T) {
	for _, res := range []Result{
		HillClimb(syntheticEval, kv.DefaultKnobs(), 50, 3),
		RandomSearch(syntheticEval, 50, 3),
	} {
		prev := math.Inf(-1)
		for i, s := range res.Trace {
			if s.BestSoFar < prev {
				t.Fatalf("BestSoFar regressed at step %d", i)
			}
			prev = s.BestSoFar
		}
		if prev != res.BestScore {
			t.Fatalf("final BestSoFar %.1f != BestScore %.1f", prev, res.BestScore)
		}
	}
}

func TestNeighborsAdjacency(t *testing.T) {
	k := kv.Knobs{MemtableCap: 4096, MaxRuns: 4, SparseEvery: 128, BloomBitsPerKey: 8}
	nbs := neighbors(k)
	if len(nbs) != 8 { // two directions in each of 4 dimensions (interior point)
		t.Fatalf("interior point has %d neighbors", len(nbs))
	}
	for _, nb := range nbs {
		diffs := 0
		if nb.MemtableCap != k.MemtableCap {
			diffs++
		}
		if nb.MaxRuns != k.MaxRuns {
			diffs++
		}
		if nb.SparseEvery != k.SparseEvery {
			diffs++
		}
		if nb.BloomBitsPerKey != k.BloomBitsPerKey {
			diffs++
		}
		if diffs != 1 {
			t.Fatalf("neighbor differs in %d dims: %+v", diffs, nb)
		}
	}
	// Corner point has fewer neighbors.
	corner := kv.Knobs{MemtableCap: 1024, MaxRuns: 2, SparseEvery: 32, BloomBitsPerKey: 0}
	if len(neighbors(corner)) != 4 {
		t.Fatalf("corner point has %d neighbors", len(neighbors(corner)))
	}
}

func TestDBACurveShape(t *testing.T) {
	curve := DBACurve(syntheticEval, DBAScript())
	if len(curve) != len(DBAScript())+1 {
		t.Fatalf("curve has %d points", len(curve))
	}
	if curve[0].Hours != 0 {
		t.Fatal("point 0 must be free")
	}
	prev := -1.0
	for i, p := range curve {
		if p.Hours < prev {
			t.Fatalf("hours not cumulative at %d", i)
		}
		prev = p.Hours
	}
	// The full script lands on a strong configuration for the synthetic
	// surface (it was written for read-mostly workloads like this one).
	if curve[len(curve)-1].Score <= curve[0].Score {
		t.Fatal("DBA script did not improve over untuned default")
	}
}

func TestStepString(t *testing.T) {
	s := Step{Knobs: kv.DefaultKnobs(), Score: 5, BestSoFar: 6}
	if s.String() == "" {
		t.Fatal("empty step string")
	}
}
