package tuner

import (
	"fmt"

	"repro/internal/pager"
)

// PoolEvaluator measures the performance (higher is better) of a
// buffer-pool configuration on the target workload — typically hit ratio
// or virtual-clock throughput, optionally penalized by memory footprint.
type PoolEvaluator func(k pager.PoolKnobs) float64

// PoolStep records one evaluation of a pool-knob sweep.
type PoolStep struct {
	Knobs     pager.PoolKnobs
	Score     float64
	BestSoFar float64
}

// PoolResult summarizes a pool tuning run.
type PoolResult struct {
	Best        pager.PoolKnobs
	BestScore   float64
	Evaluations int
	Trace       []PoolStep
}

// PoolSweep evaluates the entire pool knob space (size x eviction policy,
// pager.PoolSpace) and returns the best configuration. The space is small
// enough that exhaustive search is the honest tuner; the trace doubles as
// the training curve when evaluations are charged as training budget.
func PoolSweep(eval PoolEvaluator) PoolResult {
	var res PoolResult
	for i, k := range pager.PoolSpace() {
		s := eval(k)
		res.Evaluations++
		if s > res.BestScore || i == 0 {
			res.BestScore = s
			res.Best = k
		}
		res.Trace = append(res.Trace, PoolStep{Knobs: k, Score: s, BestSoFar: res.BestScore})
	}
	return res
}

// String renders a pool step for logs.
func (s PoolStep) String() string {
	return fmt.Sprintf("%v -> %.3f (best %.3f)", s.Knobs, s.Score, s.BestSoFar)
}
