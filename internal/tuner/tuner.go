// Package tuner implements knob auto-tuning for the kv store — the
// "learned tuning" SUT family the paper cites (OtterTune-style automatic
// configuration search [11]-[13]) — plus the manual-DBA tuning script the
// benchmark's Figure 1d compares against.
//
// The tuner treats configuration search as the *training* of the learned
// system: each candidate evaluation consumes training budget, and the
// achieved throughput as a function of spent budget is exactly the learned
// curve of Figure 1d.
package tuner

import (
	"fmt"

	"repro/internal/kv"
	"repro/internal/stats"
)

// Evaluator measures the performance (higher is better, e.g. ops/sec) of a
// knob configuration on the target workload. Evaluations are assumed
// expensive; tuners must respect their budget.
type Evaluator func(k kv.Knobs) float64

// Step records one evaluation during tuning, for training-curve reports.
type Step struct {
	Knobs kv.Knobs
	Score float64
	// BestSoFar is the best score achieved up to and including this step.
	BestSoFar float64
}

// Result summarizes a tuning run.
type Result struct {
	Best        kv.Knobs
	BestScore   float64
	Evaluations int
	Trace       []Step
}

// neighbors returns knob configurations one step away in each dimension.
func neighbors(k kv.Knobs) []kv.Knobs {
	memSteps := []int{1024, 4096, 16384, 65536}
	runSteps := []int{2, 4, 8, 16}
	sparseSteps := []int{32, 128, 512}
	bloomSteps := []int{0, 8, 16}

	var out []kv.Knobs
	addAdjacent := func(cur int, steps []int, set func(kv.Knobs, int) kv.Knobs) {
		idx := nearestIndex(cur, steps)
		for _, d := range []int{-1, 1} {
			j := idx + d
			if j >= 0 && j < len(steps) {
				out = append(out, set(k, steps[j]))
			}
		}
	}
	addAdjacent(k.MemtableCap, memSteps, func(k kv.Knobs, v int) kv.Knobs { k.MemtableCap = v; return k })
	addAdjacent(k.MaxRuns, runSteps, func(k kv.Knobs, v int) kv.Knobs { k.MaxRuns = v; return k })
	addAdjacent(k.SparseEvery, sparseSteps, func(k kv.Knobs, v int) kv.Knobs { k.SparseEvery = v; return k })
	addAdjacent(k.BloomBitsPerKey, bloomSteps, func(k kv.Knobs, v int) kv.Knobs { k.BloomBitsPerKey = v; return k })
	return out
}

func nearestIndex(v int, steps []int) int {
	best, bd := 0, -1
	for i, s := range steps {
		d := v - s
		if d < 0 {
			d = -d
		}
		if bd == -1 || d < bd {
			best, bd = i, d
		}
	}
	return best
}

// HillClimb runs greedy hill climbing with random restarts from start,
// spending at most budget evaluations. Deterministic given seed.
func HillClimb(eval Evaluator, start kv.Knobs, budget int, seed uint64) Result {
	rng := stats.NewRNG(seed)
	res := Result{Best: start.Validate()}
	if budget <= 0 {
		return res
	}
	space := kv.Space()

	evalOne := func(k kv.Knobs) float64 {
		s := eval(k)
		res.Evaluations++
		if len(res.Trace) == 0 || s > res.BestScore {
			res.BestScore = s
			res.Best = k
		}
		res.Trace = append(res.Trace, Step{Knobs: k, Score: s, BestSoFar: res.BestScore})
		return s
	}

	cur := start.Validate()
	curScore := evalOne(cur)
	for res.Evaluations < budget {
		improved := false
		for _, nb := range neighbors(cur) {
			if res.Evaluations >= budget {
				break
			}
			if s := evalOne(nb); s > curScore {
				cur, curScore = nb, s
				improved = true
				break // greedy: take the first improvement
			}
		}
		if !improved {
			if res.Evaluations >= budget {
				break
			}
			// Random restart.
			cur = space[rng.Intn(len(space))]
			curScore = evalOne(cur)
		}
	}
	return res
}

// RandomSearch evaluates budget random points — the baseline tuner.
func RandomSearch(eval Evaluator, budget int, seed uint64) Result {
	rng := stats.NewRNG(seed)
	space := kv.Space()
	var res Result
	for i := 0; i < budget; i++ {
		k := space[rng.Intn(len(space))]
		s := eval(k)
		res.Evaluations++
		if s > res.BestScore || i == 0 {
			res.BestScore = s
			res.Best = k
		}
		res.Trace = append(res.Trace, Step{Knobs: k, Score: s, BestSoFar: res.BestScore})
	}
	return res
}

// Exhaustive evaluates the entire knob space (ground truth for tests).
func Exhaustive(eval Evaluator) Result {
	var res Result
	for i, k := range kv.Space() {
		s := eval(k)
		res.Evaluations++
		if s > res.BestScore || i == 0 {
			res.BestScore = s
			res.Best = k
		}
		res.Trace = append(res.Trace, Step{Knobs: k, Score: s, BestSoFar: res.BestScore})
	}
	return res
}

// DBAAction is one manual optimization a database administrator performs,
// with the human effort it costs. Figure 1d's traditional-system curve is
// the cumulative application of these actions: a step function of effort.
type DBAAction struct {
	Name  string
	Hours float64
	Apply func(kv.Knobs) kv.Knobs
}

// DBAScript returns the ordered manual-tuning playbook for the kv store.
// The ordering reflects practice: cheap well-known wins first, speculative
// deep tuning later. The hour figures are the cost-model inputs the paper
// says a benchmark must state explicitly ("collecting statistics on
// database administrators and manual optimization costs").
func DBAScript() []DBAAction {
	return []DBAAction{
		{
			Name:  "read docs, enable bloom filters",
			Hours: 4,
			Apply: func(k kv.Knobs) kv.Knobs { k.BloomBitsPerKey = 8; return k },
		},
		{
			Name:  "size memtable to workload",
			Hours: 8,
			Apply: func(k kv.Knobs) kv.Knobs { k.MemtableCap = 16384; return k },
		},
		{
			Name:  "tighten compaction budget",
			Hours: 12,
			Apply: func(k kv.Knobs) kv.Knobs { k.MaxRuns = 4; return k },
		},
		{
			// A time-boxed DBA halves the granularity per generic
			// guidance rather than running the workload-specific
			// sweep that would find the aggressive optimum — the
			// systematic gap an auto-tuner closes.
			Name:  "tune sparse index granularity",
			Hours: 16,
			Apply: func(k kv.Knobs) kv.Knobs { k.SparseEvery = 128; return k },
		},
		{
			Name:  "full bloom sizing experiment",
			Hours: 24,
			Apply: func(k kv.Knobs) kv.Knobs { k.BloomBitsPerKey = 16; return k },
		},
	}
}

// DBAPoint is one step of the manual-tuning step function.
type DBAPoint struct {
	AfterAction string
	Hours       float64 // cumulative human hours spent
	Knobs       kv.Knobs
	Score       float64
}

// DBACurve applies the script cumulatively, evaluating after each action.
// Point 0 is the untuned default configuration at zero cost.
func DBACurve(eval Evaluator, script []DBAAction) []DBAPoint {
	k := kv.DefaultKnobs()
	out := []DBAPoint{{AfterAction: "untuned default", Hours: 0, Knobs: k, Score: eval(k)}}
	hours := 0.0
	for _, a := range script {
		k = a.Apply(k).Validate()
		hours += a.Hours
		out = append(out, DBAPoint{AfterAction: a.Name, Hours: hours, Knobs: k, Score: eval(k)})
	}
	return out
}

// String renders a step for logs.
func (s Step) String() string {
	return fmt.Sprintf("%s -> %.1f (best %.1f)", s.Knobs, s.Score, s.BestSoFar)
}
