// Package driftctl parameterizes drift behind one scalar intensity knob.
//
// The distgen drift kinds are a handful of ad-hoc processes — blend,
// hotspot, growing skew — with no common intensity scale, so "adaptability
// versus drift" cannot be plotted as a curve. This package supplies the
// missing abstraction (NeurBench's drift factor): a Controller transports
// any base key distribution toward a target distribution with intensity
// D ∈ [0, 1], a PredicateDrift does the same for the sqlmini/card query
// stack (range location and selectivity), and a shared Knob drives both
// for correlated data+query drift. Divergence from the base is measured on
// the Kolmogorov–Smirnov scale via similarity.KS, so one D is comparable
// across zipf, uniform, clustered, or email bases — and can be normalized
// to a fixed divergence target.
//
// The Controller implements distgen.Drift and distgen.DriftFiller, so it
// plugs into workload.Spec.Access/InsertKeys, workload.Source, scenario
// materialization, and every execution engine unchanged, with the
// zero-alloc hot path intact.
//
// Determinism is by construction: FillAt draws one base key, one target
// key, and one selection variate for every output key at every intensity,
// so the RNG streams consumed are identical at any D. D=0 emits the base
// stream byte-for-byte, and because a draw is substituted exactly when its
// selection variate falls below the effective intensity, the substituted
// positions at a lower D are a subset of those at a higher D — divergence
// from the base is monotone in D by coupling, not merely in expectation.
package driftctl

import (
	"fmt"

	"repro/internal/distgen"
	"repro/internal/similarity"
	"repro/internal/stats"
)

// Knob is the scalar drift-intensity schedule: a factor D in [0, 1] shaped
// over phase progress by a Profile. One Knob value shared between a data
// Controller and a PredicateDrift is the correlated data+query drift axis —
// a single schedule driving both.
type Knob struct {
	// Factor is the drift intensity D. 0 is the undrifted base workload;
	// 1 transports fully to the target.
	Factor float64
	// Profile shapes intensity over phase progress (zero value: constant).
	Profile Profile
}

// weightAt returns the effective intensity at the given progress.
func (k Knob) weightAt(p float64) float64 {
	w := k.Factor * k.Profile.At(p)
	if w < 0 {
		return 0
	}
	if w > 1 {
		return 1
	}
	return w
}

// String renders the knob for drift names.
func (k Knob) String() string {
	return fmt.Sprintf("D=%.2f,%s", k.Factor, k.Profile.Name())
}

// Controller transports a base key distribution toward a target with the
// knob's intensity: at progress p, each key is redrawn from the target with
// probability alpha(Factor·Profile(p)) and comes from the base otherwise.
// It implements distgen.Drift and distgen.DriftFiller.
type Controller struct {
	base, target distgen.Generator
	knob         Knob
	rng          *stats.RNG
	// span is the measured KS distance between base and target (0 until
	// calibrated); norm, when positive, rescales intensity so a knob
	// factor of d yields an expected divergence of ~d·norm regardless of
	// the base/target pair.
	span float64
	norm float64
	tbuf [1]uint64
}

// New returns a controller over already-constructed generators. The
// controller consumes both generators' streams (one draw each per output
// key); use NewCalibrated to also measure the divergence span.
func New(seed uint64, base, target distgen.Generator, knob Knob) *Controller {
	if base == nil || target == nil {
		panic("driftctl: New requires base and target generators")
	}
	if knob.Factor < 0 || knob.Factor > 1 {
		panic("driftctl: knob factor outside [0,1]")
	}
	return &Controller{base: base, target: target, knob: knob, rng: stats.NewRNG(seed)}
}

// CalibrationSamples is the per-family sample size EstimateSpan draws when
// n is not positive.
const CalibrationSamples = 4096

// EstimateSpan measures the KS distance between the base and target
// families. It samples fresh instances built from the factories, so the
// streaming generators inside a controller are never disturbed.
func EstimateSpan(seed uint64, base, target func(seed uint64) distgen.Generator, n int) float64 {
	if n <= 0 {
		n = CalibrationSamples
	}
	a := make([]uint64, n)
	b := make([]uint64, n)
	distgen.Fill(base(seed+0x51D1), a)
	distgen.Fill(target(seed+0xA0B3), b)
	return similarity.KS(a, b)
}

// NewCalibrated builds a controller from generator factories and measures
// the base→target divergence span on separate sample instances. When
// normTo is positive the intensity is rescaled so that a knob factor of d
// yields an expected KS divergence of ~d·normTo — the common intensity
// scale that makes D comparable across zipf/uniform/email bases.
func NewCalibrated(seed uint64, base, target func(seed uint64) distgen.Generator, knob Knob, normTo float64) *Controller {
	c := New(seed, base(seed+1), target(seed+2), knob)
	c.span = EstimateSpan(seed+3, base, target, 0)
	if normTo > 0 {
		c.norm = normTo
	}
	return c
}

// alpha maps a raw intensity weight to the target-selection probability,
// applying divergence normalization when configured.
func (c *Controller) alpha(w float64) float64 {
	if c.norm > 0 && c.span > 0 {
		w *= c.norm / c.span
		if w > 1 {
			w = 1
		}
	}
	return w
}

// Span returns the measured base→target KS distance (0 until calibrated).
func (c *Controller) Span() float64 { return c.span }

// Divergence predicts the expected KS divergence from the base stream at
// intensity d (at full profile weight): the target-selection probability
// times the measured span. It returns 0 until calibrated.
func (c *Controller) Divergence(d float64) float64 {
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	return c.alpha(d) * c.span
}

// Name implements distgen.Drift.
func (c *Controller) Name() string {
	return fmt.Sprintf("driftctl[%s](%s->%s)", c.knob, c.base.Name(), c.target.Name())
}

// KeysAt implements distgen.Drift. It draws the identical RNG streams as
// FillAt.
func (c *Controller) KeysAt(p float64, n int) []uint64 {
	out := make([]uint64, n)
	c.FillAt(p, out)
	return out
}

// FillAt implements distgen.DriftFiller. Every output key costs one base
// draw, one target draw, and one selection variate regardless of
// intensity, so the consumed RNG streams — and therefore the emitted base
// keys — are identical at every D.
func (c *Controller) FillAt(p float64, out []uint64) {
	w := c.alpha(c.knob.weightAt(p))
	for i := range out {
		distgen.Fill(c.base, out[i:i+1])
		distgen.Fill(c.target, c.tbuf[:])
		if c.rng.Float64() < w {
			out[i] = c.tbuf[0]
		}
	}
}
