package driftctl

import (
	"fmt"

	"repro/internal/sqlmini"
	"repro/internal/stats"
)

// PredicateDrift drifts a range predicate for the sqlmini/card query stack:
// the query-drift axis, orthogonal to data drift. The undrifted workload
// asks Between ranges of width Width whose start is uniform in
// [Lo, Lo+Width); as intensity rises the window's location transports
// toward TargetLo and its width scales by WidthFactor (changing
// selectivity), so at full intensity queries probe a region — and a
// selectivity regime — the system's statistics and learned models have
// never seen.
//
// Like the data Controller, PredicateAt draws exactly one random variate
// per call at every intensity: D=0 emits the undrifted predicate stream
// byte-for-byte, and higher intensities displace the same jittered windows
// rather than resampling them.
type PredicateDrift struct {
	// Column names the predicated column.
	Column string
	// Lo and Width bound the undrifted query window: starts are uniform
	// in [Lo, Lo+Width) and ranges span Width values.
	Lo, Width uint64
	// TargetLo is the window start at full intensity.
	TargetLo uint64
	// WidthFactor scales the window width at full intensity (1 keeps
	// selectivity fixed; >1 widens, <1 narrows).
	WidthFactor float64

	knob Knob
	rng  *stats.RNG
}

// NewPredicateDrift returns a predicate drift over column driven by knob.
func NewPredicateDrift(seed uint64, knob Knob, column string, lo, width, targetLo uint64, widthFactor float64) *PredicateDrift {
	if column == "" || width == 0 {
		panic("driftctl: NewPredicateDrift requires a column and a positive width")
	}
	if widthFactor <= 0 {
		widthFactor = 1
	}
	if knob.Factor < 0 || knob.Factor > 1 {
		panic("driftctl: knob factor outside [0,1]")
	}
	return &PredicateDrift{
		Column: column, Lo: lo, Width: width, TargetLo: targetLo,
		WidthFactor: widthFactor, knob: knob, rng: stats.NewRNG(seed),
	}
}

// Name identifies the drift in reports.
func (q *PredicateDrift) Name() string {
	return fmt.Sprintf("preddrift[%s](%s:%d+%d->%d,x%.1f)",
		q.knob, q.Column, q.Lo, q.Width, q.TargetLo, q.WidthFactor)
}

// PredicateAt returns the range predicate at the given phase progress.
func (q *PredicateDrift) PredicateAt(p float64) sqlmini.Predicate {
	w := q.knob.weightAt(p)
	u := q.rng.Float64()
	lo := float64(q.Lo) + w*(float64(q.TargetLo)-float64(q.Lo))
	width := float64(q.Width) * (1 + w*(q.WidthFactor-1))
	if width < 1 {
		width = 1
	}
	start := lo + u*width
	if start < 0 {
		start = 0
	}
	v := uint64(start)
	return sqlmini.Predicate{Column: q.Column, Op: sqlmini.Between, Value: v, Hi: v + uint64(width)}
}

// Correlated bundles a data Controller and a PredicateDrift driven by one
// Knob — the correlated data+query drift axis, where the keys being written
// and the ranges being queried move together under a single schedule.
type Correlated struct {
	Data  *Controller
	Query *PredicateDrift
}

// NewCorrelated pairs the two axes, verifying they share one schedule.
func NewCorrelated(data *Controller, query *PredicateDrift) Correlated {
	if data == nil || query == nil {
		panic("driftctl: NewCorrelated requires both axes")
	}
	if data.knob.Factor != query.knob.Factor || data.knob.Profile.Name() != query.knob.Profile.Name() {
		panic("driftctl: correlated axes must share one knob (factor and profile)")
	}
	return Correlated{Data: data, Query: query}
}

// Knob returns the shared schedule.
func (c Correlated) Knob() Knob { return c.Data.knob }
