package driftctl

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Profile shapes how drift intensity unfolds across a phase: it maps phase
// progress in [0, 1] to a weight in [0, 1] that multiplies the knob's
// factor. The zero value is the constant profile (full intensity from the
// first operation), Ramp grows linearly, Step switches abruptly, and Sine
// oscillates — the same transition shapes distgen's ad-hoc drifts hardcode,
// factored out so one schedule can drive every drifting axis.
type Profile struct {
	name string
	fn   func(p float64) float64
}

// Name identifies the profile in reports and drift names.
func (pr Profile) Name() string {
	if pr.name == "" {
		return "const"
	}
	return pr.name
}

// At returns the profile weight at the given progress, clamped to [0, 1].
func (pr Profile) At(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if pr.fn == nil {
		return 1
	}
	w := pr.fn(p)
	if w < 0 {
		return 0
	}
	if w > 1 {
		return 1
	}
	return w
}

// Constant applies the knob's full factor throughout the phase.
func Constant() Profile { return Profile{} }

// Ramp grows the weight linearly from 0 at the start of the phase to 1 at
// the end — the paper's "slow transition".
func Ramp() Profile {
	return Profile{name: "ramp", fn: func(p float64) float64 { return p }}
}

// Step switches the weight from 0 to 1 when progress crosses at — the
// "abrupt transition".
func Step(at float64) Profile {
	if at <= 0 || at >= 1 {
		at = 0.5
	}
	return Profile{
		name: fmt.Sprintf("step@%.2f", at),
		fn: func(p float64) float64 {
			if p < at {
				return 0
			}
			return 1
		},
	}
}

// Sine oscillates the weight through the given number of full cycles — the
// diurnal shape, peaking mid-cycle.
func Sine(cycles float64) Profile {
	if cycles <= 0 {
		cycles = 1
	}
	return Profile{
		name: fmt.Sprintf("sine@%.1f", cycles),
		fn: func(p float64) float64 {
			return 0.5 * (1 - math.Cos(2*math.Pi*cycles*p))
		},
	}
}

// ParseProfile resolves a profile by its config/CLI spelling: "const" (or
// empty), "ramp", "step" / "step@0.3", "sine" / "sine@2".
func ParseProfile(s string) (Profile, error) {
	name, arg := s, ""
	if i := strings.IndexByte(s, '@'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	var v float64
	if arg != "" {
		var err error
		v, err = strconv.ParseFloat(arg, 64)
		if err != nil {
			return Profile{}, fmt.Errorf("driftctl: profile %q: bad parameter %q", s, arg)
		}
	}
	switch name {
	case "", "const":
		return Constant(), nil
	case "ramp":
		return Ramp(), nil
	case "step":
		return Step(v), nil
	case "sine":
		return Sine(v), nil
	default:
		return Profile{}, fmt.Errorf("driftctl: unknown profile %q", s)
	}
}
