package driftctl

import (
	"math"
	"testing"

	"repro/internal/distgen"
	"repro/internal/similarity"
	"repro/internal/sqlmini"
	"repro/internal/workload"
)

const testN = 8192

func zipfBase(seed uint64) distgen.Generator { return distgen.NewZipfKeys(seed, 1.1, 1<<20) }
func uniformTarget(seed uint64) distgen.Generator {
	return distgen.NewUniform(seed, 0, distgen.KeyDomain)
}

// lowHalf and highHalf occupy disjoint halves of the key domain — a
// base/target pair whose KS span is exactly 1, so divergence measurements
// are far above sampling noise.
func lowHalf(seed uint64) distgen.Generator {
	return distgen.NewUniform(seed, 0, distgen.KeyDomain/2)
}
func highHalf(seed uint64) distgen.Generator {
	return distgen.NewUniform(seed, distgen.KeyDomain/2, distgen.KeyDomain)
}

// streamWith draws one controller stream at factor d, filling in batches so
// batching itself is exercised.
func streamWith(base, target func(uint64) distgen.Generator, d float64, n, batch int) []uint64 {
	c := New(99, base(7), target(8), Knob{Factor: d})
	out := make([]uint64, n)
	for pos := 0; pos < n; pos += batch {
		end := pos + batch
		if end > n {
			end = n
		}
		c.FillAt(float64(pos)/float64(n), out[pos:end])
	}
	return out
}

// streamAt is streamWith over the canonical zipf→uniform pair.
func streamAt(d float64, n, batch int) []uint64 {
	return streamWith(zipfBase, uniformTarget, d, n, batch)
}

// TestControllerZeroIntensityByteIdentical pins the D=0 contract: the
// controller emits the undrifted base stream byte-for-byte, at any batching.
func TestControllerZeroIntensityByteIdentical(t *testing.T) {
	want := make([]uint64, testN)
	distgen.Fill(zipfBase(7), want)
	for _, batch := range []int{1, 7, 64, testN} {
		got := streamAt(0, testN, batch)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d: key %d differs at D=0: got %d want %d", batch, i, got[i], want[i])
			}
		}
	}
}

// TestControllerCouplingAcrossIntensities pins the shared-RNG-stream
// contract: every output key at any D is either the base stream's or the
// target stream's key for that position, the positions substituted at a
// lower D are a subset of those at a higher D, and D=1 is the full target
// stream.
func TestControllerCouplingAcrossIntensities(t *testing.T) {
	base := streamAt(0, testN, 64)
	target := make([]uint64, testN)
	distgen.Fill(uniformTarget(8), target)

	var prev map[int]bool
	for _, d := range []float64{0, 0.25, 0.5, 0.75, 1} {
		out := streamAt(d, testN, 64)
		subs := map[int]bool{}
		for i := range out {
			switch out[i] {
			case base[i]:
			case target[i]:
				subs[i] = true
			default:
				t.Fatalf("D=%.2f: key %d is neither base nor target draw", d, i)
			}
		}
		for i := range prev {
			if !subs[i] && base[i] != target[i] {
				t.Fatalf("coupling broken: position %d substituted at a lower D but not at D=%.2f", i, d)
			}
		}
		prev = subs
	}
	full := streamAt(1, testN, 64)
	for i := range full {
		if full[i] != target[i] {
			t.Fatalf("D=1 key %d is not the target stream's", i)
		}
	}
}

// TestControllerKeysAtMatchesFillAt: the two drift entry points draw the
// same RNG streams.
func TestControllerKeysAtMatchesFillAt(t *testing.T) {
	a := New(99, zipfBase(7), uniformTarget(8), Knob{Factor: 0.5})
	b := New(99, zipfBase(7), uniformTarget(8), Knob{Factor: 0.5})
	got := a.KeysAt(0.7, 1024)
	want := make([]uint64, 1024)
	b.FillAt(0.7, want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KeysAt and FillAt diverge at key %d", i)
		}
	}
}

// TestControllerDivergenceMonotoneInD: measured KS divergence from the
// base stream is (within sampling noise) non-decreasing in D and rises
// substantially from D=0 to D=1.
func TestControllerDivergenceMonotoneInD(t *testing.T) {
	base := streamWith(lowHalf, highHalf, 0, testN, 64)
	prev := 0.0
	for _, d := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		div := similarity.KS(streamWith(lowHalf, highHalf, d, testN, 64), base)
		if div < prev-0.02 {
			t.Fatalf("divergence not monotone: D=%.1f gives %.4f after %.4f", d, div, prev)
		}
		if div > prev {
			prev = div
		}
	}
	d0 := similarity.KS(streamWith(lowHalf, highHalf, 0, testN, 64), base)
	d1 := similarity.KS(streamWith(lowHalf, highHalf, 1, testN, 64), base)
	if d1-d0 < 0.2 {
		t.Fatalf("divergence barely moves across the knob: %.4f -> %.4f", d0, d1)
	}
}

// TestControllerDivergencePredicts: the calibrated Divergence(d) estimate
// matches the measured divergence of the emitted stream.
func TestControllerDivergencePredicts(t *testing.T) {
	for _, d := range []float64{0.3, 0.6, 1} {
		c := NewCalibrated(99, zipfBase, uniformTarget, Knob{Factor: d}, 0)
		out := c.KeysAt(1, testN)
		bs := make([]uint64, testN)
		distgen.Fill(zipfBase(4242), bs)
		measured := similarity.KS(out, bs)
		if diff := math.Abs(c.Divergence(d) - measured); diff > 0.05 {
			t.Fatalf("D=%.1f: predicted divergence %.4f but measured %.4f", d, c.Divergence(d), measured)
		}
	}
}

// TestControllerNormalization: with a normalization target, one knob value
// yields comparable measured divergence across very different base/target
// families — the common intensity scale.
func TestControllerNormalization(t *testing.T) {
	const normTo = 0.25
	families := []struct {
		name         string
		base, target func(uint64) distgen.Generator
	}{
		{"low->high", lowHalf, highHalf},
		{"uniform->high", uniformTarget, highHalf},
	}
	spans := make([]float64, len(families))
	for i, f := range families {
		c := NewCalibrated(99, f.base, f.target, Knob{Factor: 1}, normTo)
		spans[i] = c.Span()
		out := c.KeysAt(1, testN)
		bs := make([]uint64, testN)
		distgen.Fill(f.base(4242), bs)
		div := similarity.KS(out, bs)
		if math.Abs(div-normTo) > 0.06 {
			t.Fatalf("%s: normalized divergence %.4f, want ~%.2f (span %.4f)", f.name, div, normTo, c.Span())
		}
	}
	if math.Abs(spans[0]-spans[1]) < 0.05 {
		t.Fatalf("test families too similar to exercise normalization: spans %.4f vs %.4f", spans[0], spans[1])
	}
}

// TestControllerThroughWorkloadGenerator: plugged into workload.Spec.Access
// at D=0, the controller leaves the full op stream (types, keys, values)
// byte-identical to the undrifted spec.
func TestControllerThroughWorkloadGenerator(t *testing.T) {
	spec := func(access distgen.Drift) workload.Spec {
		return workload.Spec{Mix: workload.Balanced, Access: access}
	}
	plain := workload.NewGenerator(spec(distgen.Static{G: zipfBase(7)}), 31)
	ctl := workload.NewGenerator(spec(New(99, zipfBase(7), uniformTarget(8), Knob{})), 31)
	for i := 0; i < 4096; i++ {
		p := float64(i) / 4096
		a, b := plain.Next(p), ctl.Next(p)
		if a != b {
			t.Fatalf("op %d differs at D=0: %+v vs %+v", i, a, b)
		}
	}
}

func TestProfiles(t *testing.T) {
	if w := Constant().At(0.3); w != 1 {
		t.Fatalf("const profile at 0.3 = %v", w)
	}
	if w := Ramp().At(0.25); w != 0.25 {
		t.Fatalf("ramp at 0.25 = %v", w)
	}
	if w := Step(0.5).At(0.4); w != 0 {
		t.Fatalf("step@0.5 at 0.4 = %v", w)
	}
	if w := Step(0.5).At(0.6); w != 1 {
		t.Fatalf("step@0.5 at 0.6 = %v", w)
	}
	if w := Sine(1).At(0.5); math.Abs(w-1) > 1e-9 {
		t.Fatalf("sine@1 at 0.5 = %v", w)
	}
	for _, s := range []string{"", "const", "ramp", "step", "step@0.3", "sine", "sine@2"} {
		if _, err := ParseProfile(s); err != nil {
			t.Fatalf("ParseProfile(%q): %v", s, err)
		}
	}
	if _, err := ParseProfile("nope"); err == nil {
		t.Fatal("ParseProfile accepted an unknown profile")
	}
	if _, err := ParseProfile("step@x"); err == nil {
		t.Fatal("ParseProfile accepted a malformed parameter")
	}
	k := Knob{Factor: 0.5, Profile: Ramp()}
	if w := k.weightAt(0.5); w != 0.25 {
		t.Fatalf("knob weight = %v", w)
	}
}

// TestPredicateDriftZeroIntensity: the D=0 predicate stream is
// byte-identical to an undrifted instance's, and D=1 transports the window
// to the target location with scaled width.
func TestPredicateDriftZeroIntensity(t *testing.T) {
	a := NewPredicateDrift(11, Knob{Factor: 0}, "val", 0, 64, 4096, 4)
	b := NewPredicateDrift(11, Knob{Factor: 0}, "val", 0, 64, 4096, 4)
	bAt := func(q *PredicateDrift, i int) sqlmini.Predicate { return q.PredicateAt(float64(i) / 512) }
	for i := 0; i < 512; i++ {
		if bAt(a, i) != bAt(b, i) {
			t.Fatalf("predicate %d differs between identical D=0 instances", i)
		}
	}
	z := NewPredicateDrift(11, Knob{Factor: 0}, "val", 0, 64, 4096, 4)
	for i := 0; i < 512; i++ {
		p := bAt(z, i)
		if p.Value >= 128 || p.Hi-p.Value != 64 {
			t.Fatalf("D=0 predicate escaped the base window: %+v", p)
		}
	}
	full := NewPredicateDrift(11, Knob{Factor: 1}, "val", 0, 64, 4096, 4)
	for i := 0; i < 512; i++ {
		p := bAt(full, i)
		if p.Value < 4096 || p.Hi-p.Value != 256 {
			t.Fatalf("D=1 predicate did not transport/scale: %+v", p)
		}
	}
}

// TestPredicateDriftSharedStream: every intensity consumes the same jitter
// stream — the recovered uniform variate of the i-th predicate is equal
// across D.
func TestPredicateDriftSharedStream(t *testing.T) {
	recoverU := func(d float64, n int) []float64 {
		q := NewPredicateDrift(11, Knob{Factor: d}, "val", 0, 64, 4096, 4)
		us := make([]float64, n)
		for i := range us {
			p := q.PredicateAt(0.5)
			w := q.knob.weightAt(0.5)
			lo := w * 4096
			width := 64 * (1 + w*3)
			us[i] = (float64(p.Value) - lo) / width
		}
		return us
	}
	ref := recoverU(0, 256)
	for _, d := range []float64{0.5, 1} {
		us := recoverU(d, 256)
		for i := range us {
			// uint64 truncation of the start loses < 1 value of width.
			if math.Abs(us[i]-ref[i]) > 1.0/64 {
				t.Fatalf("D=%.1f: jitter stream diverged at %d: %v vs %v", d, i, us[i], ref[i])
			}
		}
	}
}

func TestCorrelatedSharedKnob(t *testing.T) {
	knob := Knob{Factor: 0.5, Profile: Ramp()}
	data := New(99, zipfBase(7), uniformTarget(8), knob)
	query := NewPredicateDrift(11, knob, "val", 0, 64, 4096, 4)
	c := NewCorrelated(data, query)
	if c.Knob().Factor != knob.Factor || c.Knob().Profile.Name() != knob.Profile.Name() {
		t.Fatalf("correlated knob %v, want %v", c.Knob(), knob)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewCorrelated accepted mismatched knobs")
		}
	}()
	NewCorrelated(data, NewPredicateDrift(11, Knob{Factor: 0.9}, "val", 0, 64, 4096, 4))
}
