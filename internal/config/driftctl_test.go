package config

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

const driftSessionJSON = `{
  "name": "drift-session",
  "seed": 7,
  "initialData": {"kind": "uniform"},
  "initialSize": 3000,
  "intervalNs": 200000,
  "session": {"gapNs": 2000000, "budgetNs": 30000000},
  "phases": [
    {
      "name": "drifting",
      "ops": 3000,
      "mix": {"get": 0.8, "put": 0.2},
      "access": {"kind": "controller", "factor": 0.5, "profile": "ramp", "normalize": 0.25,
        "startGen": {"kind": "zipf", "theta": 1.1, "universe": 1048576},
        "endGen": {"kind": "uniform"}},
      "arrival": {"kind": "session", "thinkNs": 2000000, "intraGapNs": 50000, "minOps": 3, "maxOps": 9}
    }
  ]
}`

func TestControllerDriftClause(t *testing.T) {
	u := &GenSpec{Kind: "uniform"}
	z := &GenSpec{Kind: "zipf"}
	d, err := DriftSpec{Kind: "controller", StartGen: z, EndGen: u, Factor: 0.5}.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.KeysAt(0.5, 5)) != 5 {
		t.Fatal("controller drift produced no keys")
	}
	if !strings.Contains(d.Name(), "D=0.50") {
		t.Fatalf("name %q does not carry the factor", d.Name())
	}

	// The sweep override replaces the document's factor.
	o, err := DriftSpec{Kind: "controller", StartGen: z, EndGen: u, Factor: 0.5}.buildWith(1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(o.Name(), "D=0.90") {
		t.Fatalf("override not applied: %q", o.Name())
	}

	bad := []DriftSpec{
		{Kind: "controller", StartGen: z},                                    // missing target
		{Kind: "controller", StartGen: z, EndGen: u, Factor: 1.5},            // factor out of range
		{Kind: "controller", StartGen: z, EndGen: u, Profile: "warp"},        // unknown profile
		{Kind: "controller", StartGen: z, EndGen: &GenSpec{Kind: "mystery"}}, // bad target spec
		{Kind: "controller", StartGen: &GenSpec{Kind: "mystery"}, EndGen: u}, // bad base spec
	}
	for _, s := range bad {
		if _, err := s.Build(1); err == nil {
			t.Fatalf("invalid controller spec accepted: %+v", s)
		}
	}
}

func TestSessionArrivalClause(t *testing.T) {
	a, err := ArrivalSpec{Kind: "session"}.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(*workload.SessionArrival); !ok {
		t.Fatalf("session clause built %T", a)
	}
	if g := a.NextGap(0); g < 2_000_000 {
		t.Fatalf("default think gap %d below 2ms", g)
	}
}

func TestDriftSessionEndToEnd(t *testing.T) {
	s, err := Parse([]byte(driftSessionJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Session == nil || s.Session.BudgetNs != 30_000_000 {
		t.Fatalf("session clause lost: %+v", s.Session)
	}
	res, err := core.NewRunner().Run(s, core.NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Sessions == nil || res.Snapshot.Sessions.Sessions == 0 {
		t.Fatal("run produced no session stats")
	}

	// CLI overrides: -drift-factor rewrites the controller's D, -session
	// replaces the document's clause.
	over, err := ParseWith([]byte(driftSessionJSON), Options{
		DriftFactor: 1,
		Session:     &workload.SessionSpec{GapNs: 2_000_000, BudgetNs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if over.Session.BudgetNs != 1 {
		t.Fatalf("session override lost: %+v", over.Session)
	}
	if !strings.Contains(over.Phases[0].Workload.Access.Name(), "D=1.00") {
		t.Fatalf("drift-factor override lost: %q", over.Phases[0].Workload.Access.Name())
	}
}
