package config

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/workload"
)

const sampleJSON = `{
  "name": "sample",
  "seed": 42,
  "initialData": {"kind": "zipf", "theta": 1.1, "universe": 1048576},
  "initialSize": 5000,
  "trainBefore": true,
  "intervalNs": 200000,
  "phases": [
    {
      "name": "steady",
      "ops": 2000,
      "mix": {"get": 0.9, "put": 0.1},
      "access": {"kind": "static", "gen": {"kind": "zipf", "theta": 1.1, "universe": 1048576}}
    },
    {
      "name": "shift",
      "ops": 2000,
      "mix": {"get": 0.5, "put": 0.5},
      "access": {"kind": "abrupt", "at": 0.3,
        "startGen": {"kind": "uniform"},
        "endGen": {"kind": "clustered", "clusters": 10}},
      "insertKeys": {"kind": "static", "gen": {"kind": "sequential", "maxGap": 8}},
      "arrival": {"kind": "diurnal", "rate": 500000, "amplitude": 0.4, "cycles": 2},
      "retrainBefore": true
    }
  ]
}`

func TestParseAndRun(t *testing.T) {
	scenario, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if scenario.Name != "sample" || len(scenario.Phases) != 2 {
		t.Fatalf("scenario = %+v", scenario)
	}
	if !scenario.Phases[1].RetrainBefore {
		t.Fatal("retrainBefore lost")
	}
	res, err := core.NewRunner().Run(scenario, core.NewRMISUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4000 {
		t.Fatalf("completed = %d", res.Completed)
	}
}

func TestParseDeterministic(t *testing.T) {
	a, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Parse([]byte(sampleJSON))
	ra, err := core.NewRunner().Run(a, core.NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := core.NewRunner().Run(b, core.NewBTreeSUT())
	if ra.DurationNs != rb.DurationNs {
		t.Fatal("config-built scenarios not deterministic")
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(sampleJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestAllGeneratorKinds(t *testing.T) {
	kinds := []string{"uniform", "normal", "lognormal", "zipf", "clustered",
		"segmented", "sequential", "email"}
	for _, k := range kinds {
		g, err := GenSpec{Kind: k}.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if len(g.Keys(10)) != 10 {
			t.Fatalf("%s: no keys", k)
		}
	}
	if _, err := (GenSpec{Kind: "nope"}).Build(1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestAllDriftKinds(t *testing.T) {
	u := &GenSpec{Kind: "uniform"}
	specs := []DriftSpec{
		{Kind: "static", Gen: u},
		{Kind: "blend", StartGen: u, EndGen: u},
		{Kind: "abrupt", StartGen: u, EndGen: u, At: 0.4},
		{Kind: "hotspot"},
		{Kind: "growskew"},
		{Kind: "schedule", Segments: []DriftSpec{{Kind: "static", Gen: u}}},
	}
	for _, s := range specs {
		d, err := s.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", s.Kind, err)
		}
		if len(d.KeysAt(0.5, 5)) != 5 {
			t.Fatalf("%s: no keys", s.Kind)
		}
	}
	bad := []DriftSpec{
		{Kind: "static"},
		{Kind: "blend", StartGen: u},
		{Kind: "schedule"},
		{Kind: "mystery"},
	}
	for _, s := range bad {
		if _, err := s.Build(1); err == nil {
			t.Fatalf("%s: invalid spec accepted", s.Kind)
		}
	}
}

func TestAllArrivalKinds(t *testing.T) {
	specs := []ArrivalSpec{
		{Kind: "closed"},
		{Kind: ""},
		{Kind: "poisson", Rate: 1000},
		{Kind: "diurnal", Rate: 1000},
		{Kind: "bursty", Rate: 1000},
	}
	for _, s := range specs {
		a, err := s.Build(1)
		if err != nil {
			t.Fatalf("%q: %v", s.Kind, err)
		}
		if g := a.NextGap(0.5); g < 0 {
			t.Fatalf("%q: negative gap", s.Kind)
		}
	}
	bad := []ArrivalSpec{
		{Kind: "poisson"},
		{Kind: "diurnal"},
		{Kind: "bursty"},
		{Kind: "warp"},
	}
	for _, s := range bad {
		if _, err := s.Build(1); err == nil {
			t.Fatalf("%q: invalid spec accepted", s.Kind)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad-json":   `{`,
		"no-phases":  `{"name":"x","initialData":{"kind":"uniform"},"initialSize":10}`,
		"bad-gen":    `{"name":"x","initialData":{"kind":"warp"},"initialSize":10,"phases":[{"name":"p","ops":5,"mix":{"get":1},"access":{"kind":"static","gen":{"kind":"uniform"}}}]}`,
		"bad-access": `{"name":"x","initialData":{"kind":"uniform"},"initialSize":10,"phases":[{"name":"p","ops":5,"mix":{"get":1},"access":{"kind":"static"}}]}`,
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Fatalf("%s: accepted", name)
		} else if !strings.Contains(err.Error(), "config:") && !strings.Contains(err.Error(), "core:") {
			t.Fatalf("%s: unhelpful error %v", name, err)
		}
	}
}

// writeSampleTrace records a short two-phase trace to dir and returns its
// path and raw bytes.
func writeSampleTrace(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := workload.NewTraceWriter(&buf, "cfg", 9)
	src := workload.NewSource(workload.Spec{
		Mix:    workload.Balanced,
		Access: distgen.Static{G: distgen.NewZipfKeys(3, 1.1, 1<<16)},
	}, workload.NewPoisson(4, 200_000), 5)
	ops := make([]workload.Op, 600)
	gaps := make([]int64, 600)
	src.Fill(ops, gaps, 0, 600)
	w.BeginPhase(0, "a", 400)
	w.Append(ops[:400], gaps[:400])
	w.BeginPhase(1, "b", 200)
	w.Append(ops[400:], gaps[400:])
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sample.lstrace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

func TestSourceClauseTrace(t *testing.T) {
	path, raw := writeSampleTrace(t, t.TempDir())

	doc := Scenario{
		Name:        "replay",
		Seed:        7,
		InitialData: GenSpec{Kind: "uniform"},
		InitialSize: 1000,
		Phases: []Phase{
			{Name: "all", Source: &SourceSpec{Kind: "trace", Path: path}},
		},
	}
	sc, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Phases[0].Ops != 600 || sc.Phases[0].Source == nil {
		t.Fatalf("phase = %+v", sc.Phases[0])
	}
	res, err := core.NewRunner().Run(sc, core.NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 600 {
		t.Fatalf("completed = %d", res.Completed)
	}

	// Per-phase selection and inline data, via the JSON round trip the
	// service uses.
	one := 1
	doc.Phases = []Phase{{Name: "b-only", Source: &SourceSpec{Kind: "trace", Data: raw, Phase: &one}}}
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if sc2.Phases[0].Ops != 200 {
		t.Fatalf("phase ops = %d, want 200 (trace phase 1)", sc2.Phases[0].Ops)
	}
}

func TestSourceClauseSynth(t *testing.T) {
	path, _ := writeSampleTrace(t, t.TempDir())
	doc := Scenario{
		Name:        "synth",
		Seed:        7,
		InitialData: GenSpec{Kind: "uniform"},
		InitialSize: 1000,
		Phases: []Phase{
			// Unbounded synth: ops must be explicit.
			{Name: "fit", Ops: 2500, Source: &SourceSpec{Kind: "synth", Path: path, RepeatFrac: 0.25, TopK: 16, Buckets: 32}},
		},
	}
	sc, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewRunner().Run(sc, core.NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Outcomes.Failed != 2500 {
		t.Fatalf("completed = %d", res.Completed)
	}

	// Same config → same seeded synth stream → identical results.
	sc2, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.NewRunner().Run(sc2, core.NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res2.Completed || res.DurationNs != res2.DurationNs {
		t.Fatal("synth-backed config runs are not deterministic")
	}
}

func TestSourceClauseErrors(t *testing.T) {
	path, _ := writeSampleTrace(t, t.TempDir())
	base := func() Scenario {
		return Scenario{
			Name:        "bad",
			Seed:        1,
			InitialData: GenSpec{Kind: "uniform"},
			InitialSize: 100,
		}
	}
	bad9 := 9
	for name, ph := range map[string]Phase{
		"unknown kind":    {Name: "p", Ops: 10, Source: &SourceSpec{Kind: "mystery", Path: path}},
		"missing ref":     {Name: "p", Ops: 10, Source: &SourceSpec{Kind: "trace"}},
		"no such file":    {Name: "p", Ops: 10, Source: &SourceSpec{Kind: "trace", Path: path + ".nope"}},
		"phase range":     {Name: "p", Ops: 10, Source: &SourceSpec{Kind: "trace", Path: path, Phase: &bad9}},
		"bad repeat":      {Name: "p", Ops: 10, Source: &SourceSpec{Kind: "synth", Path: path, RepeatFrac: 1.5}},
		"synth no ops":    {Name: "p", Source: &SourceSpec{Kind: "synth", Path: path}},
		"trace too short": {Name: "p", Ops: 10_000, Source: &SourceSpec{Kind: "trace", Path: path}},
	} {
		doc := base()
		doc.Phases = []Phase{ph}
		if _, err := doc.Build(); err == nil {
			t.Errorf("%s: Build succeeded", name)
		}
	}
}
