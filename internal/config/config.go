// Package config parses JSON scenario descriptions into runnable
// core.Scenario values — the configuration surface of cmd/lsbench. The
// schema mirrors §V-B of the paper: data distributions, operation mixes,
// drift processes, arrival processes, training settings, and phase
// sequencing are all declarative.
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/driftctl"
	"repro/internal/workload"
)

// Scenario is the JSON document root.
type Scenario struct {
	Name        string  `json:"name"`
	Seed        uint64  `json:"seed"`
	InitialData GenSpec `json:"initialData"`
	InitialSize int     `json:"initialSize"`
	TrainBefore bool    `json:"trainBefore"`
	IntervalNs  int64   `json:"intervalNs"`
	SLANs       int64   `json:"slaNs"`
	Phases      []Phase `json:"phases"`
	// Session segments the run into interactive sessions with a
	// per-session budget (see core.Scenario.Session).
	Session *SessionSpec `json:"session,omitempty"`
}

// SessionSpec is the JSON form of workload.SessionSpec: gaps at or above
// GapNs begin a new session; BudgetNs is the per-session SLA budget.
type SessionSpec struct {
	GapNs    int64 `json:"gapNs"`
	BudgetNs int64 `json:"budgetNs,omitempty"`
}

// Phase is one workload segment.
type Phase struct {
	Name          string       `json:"name"`
	Ops           int          `json:"ops"`
	Mix           MixSpec      `json:"mix"`
	Access        DriftSpec    `json:"access"`
	InsertKeys    *DriftSpec   `json:"insertKeys,omitempty"`
	MixEnd        *MixSpec     `json:"mixEnd,omitempty"`
	Arrival       *ArrivalSpec `json:"arrival,omitempty"`
	RetrainBefore bool         `json:"retrainBefore"`
	// Source selects where the phase's op stream comes from. Absent (or
	// kind "generator") means the Mix/Access/Arrival specs above; kinds
	// "trace" and "synth" draw from a recorded trace instead, and the
	// spec fields may then be omitted entirely.
	Source *SourceSpec `json:"source,omitempty"`
}

// SourceSpec selects a non-generator operation source for a phase.
type SourceSpec struct {
	// Kind is "generator" (default), "trace" (replay a recorded trace
	// verbatim), or "synth" (fit the trace's statistics and generate
	// unbounded seeded lookalike load).
	Kind string `json:"kind"`
	// Path is the trace file to replay or fit.
	Path string `json:"path,omitempty"`
	// Data inlines the trace bytes (base64 in JSON) — how service
	// submitters attach a trace without a shared filesystem. Takes
	// precedence over Path.
	Data []byte `json:"data,omitempty"`
	// Phase selects one phase of the trace; nil uses the whole trace
	// flattened (replay) or fits across all phases (synth).
	Phase *int `json:"phase,omitempty"`
	// RepeatFrac is the synth repetition knob: the fraction of keys
	// re-drawn from the recently issued window (Redbench-style temporal
	// locality). 0 ≤ RepeatFrac < 1.
	RepeatFrac float64 `json:"repeatFrac,omitempty"`
	// TopK / Buckets tune the fit (defaults: 64 head keys, 256 tail
	// buckets).
	TopK    int `json:"topK,omitempty"`
	Buckets int `json:"buckets,omitempty"`
}

// build resolves the spec into a Source. The returned length is the
// source's bounded op count (0 for unbounded synth), used to default the
// phase's Ops. traces caches decoded files so several phases replaying
// from one recording parse it once.
func (sp SourceSpec) build(base uint64, traces map[string]*workload.Trace) (workload.Source, int, error) {
	tr, err := sp.trace(traces)
	if err != nil {
		return nil, 0, err
	}
	switch sp.Kind {
	case "trace":
		if sp.Phase != nil {
			pi := *sp.Phase
			if pi < 0 || pi >= len(tr.Phases) {
				return nil, 0, fmt.Errorf("config: trace has %d phases, no phase %d", len(tr.Phases), pi)
			}
			r := tr.PhaseReader(pi)
			return r, r.Len(), nil
		}
		r := tr.Reader()
		return r, r.Len(), nil
	case "synth":
		if sp.RepeatFrac < 0 || sp.RepeatFrac >= 1 {
			return nil, 0, fmt.Errorf("config: repeatFrac %v outside [0,1)", sp.RepeatFrac)
		}
		opt := workload.FitOptions{TopK: sp.TopK, TailBuckets: sp.Buckets}
		var st *workload.TraceStats
		if sp.Phase != nil {
			pi := *sp.Phase
			if pi < 0 || pi >= len(tr.Phases) {
				return nil, 0, fmt.Errorf("config: trace has %d phases, no phase %d", len(tr.Phases), pi)
			}
			ph := tr.Phases[pi]
			st = workload.FitStream(ph.Ops, ph.Gaps, opt)
		} else {
			st = workload.FitTrace(tr, opt)
		}
		if st.Ops == 0 {
			return nil, 0, fmt.Errorf("config: trace is empty, nothing to fit")
		}
		// The runner reseeds the synthesizer per phase; base is only
		// the fallback for direct use.
		return workload.NewSynthesizer(st, base, sp.RepeatFrac), 0, nil
	default:
		return nil, 0, fmt.Errorf("config: unknown source kind %q", sp.Kind)
	}
}

// trace loads the referenced trace from inline data or the path cache.
func (sp SourceSpec) trace(traces map[string]*workload.Trace) (*workload.Trace, error) {
	if len(sp.Data) > 0 {
		tr, err := workload.ReadTrace(bytes.NewReader(sp.Data))
		if err != nil {
			return nil, fmt.Errorf("config: inline trace: %w", err)
		}
		return tr, nil
	}
	if sp.Path == "" {
		return nil, fmt.Errorf("config: %s source requires path or data", sp.Kind)
	}
	if tr, ok := traces[sp.Path]; ok {
		return tr, nil
	}
	tr, err := workload.ReadTraceFile(sp.Path)
	if err != nil {
		return nil, err
	}
	traces[sp.Path] = tr
	return tr, nil
}

// MixSpec is an operation mix.
type MixSpec struct {
	Get       float64 `json:"get"`
	Put       float64 `json:"put"`
	Delete    float64 `json:"delete"`
	Scan      float64 `json:"scan"`
	ScanLimit int     `json:"scanLimit"`
}

func (m MixSpec) build() workload.Mix {
	return workload.Mix{
		GetFrac: m.Get, PutFrac: m.Put, DeleteFrac: m.Delete,
		ScanFrac: m.Scan, ScanLimit: m.ScanLimit,
	}
}

// GenSpec names a data distribution generator. Field interpretation
// depends on Kind; unset fields take sensible defaults.
type GenSpec struct {
	Kind     string  `json:"kind"`
	Lo       uint64  `json:"lo,omitempty"`       // uniform lower bound
	Hi       uint64  `json:"hi,omitempty"`       // uniform upper bound
	Mu       float64 `json:"mu,omitempty"`       // normal/lognormal location
	Sigma    float64 `json:"sigma,omitempty"`    // normal/lognormal deviation
	Scale    float64 `json:"scale,omitempty"`    // lognormal multiplier
	Theta    float64 `json:"theta,omitempty"`    // zipf skew
	Universe uint64  `json:"universe,omitempty"` // zipf universe size
	Clusters int     `json:"clusters,omitempty"` // clustered cluster count
	Segments int     `json:"segments,omitempty"` // segmented segment count
	Spread   float64 `json:"spread,omitempty"`   // clustered sigma
	Start    uint64  `json:"start,omitempty"`    // sequential start key
	MaxGap   uint64  `json:"maxGap,omitempty"`   // sequential max gap
}

// Build constructs the generator, deriving its seed from base.
func (g GenSpec) Build(base uint64) (distgen.Generator, error) {
	switch g.Kind {
	case "uniform":
		lo, hi := g.Lo, g.Hi
		if hi == 0 {
			hi = distgen.KeyDomain
		}
		if hi <= lo {
			return nil, fmt.Errorf("config: uniform bounds [%d,%d)", lo, hi)
		}
		return distgen.NewUniform(base, lo, hi), nil
	case "normal":
		mu, sigma := g.Mu, g.Sigma
		if mu == 0 {
			mu = float64(distgen.KeyDomain) / 2
		}
		if sigma <= 0 {
			sigma = float64(distgen.KeyDomain) / 64
		}
		return distgen.NewNormal(base, mu, sigma), nil
	case "lognormal":
		scale := g.Scale
		if scale <= 0 {
			scale = 1e12
		}
		sigma := g.Sigma
		if sigma <= 0 {
			sigma = 2
		}
		return distgen.NewLognormal(base, g.Mu, sigma, scale), nil
	case "zipf":
		theta := g.Theta
		if theta <= 0 {
			theta = 1.1
		}
		u := g.Universe
		if u == 0 {
			u = 1 << 22
		}
		return distgen.NewZipfKeys(base, theta, u), nil
	case "clustered":
		k := g.Clusters
		if k <= 0 {
			k = 20
		}
		spread := g.Spread
		if spread <= 0 {
			spread = float64(distgen.KeyDomain) / 1e6
		}
		return distgen.NewClustered(base, k, spread), nil
	case "segmented":
		s := g.Segments
		if s <= 0 {
			s = 16
		}
		return distgen.NewSegmented(base, s), nil
	case "sequential":
		gap := g.MaxGap
		if gap == 0 {
			gap = 64
		}
		return distgen.NewSequential(base, g.Start, gap), nil
	case "email":
		return distgen.NewEmail(base), nil
	default:
		return nil, fmt.Errorf("config: unknown generator kind %q", g.Kind)
	}
}

// DriftSpec names a drift process over generators.
type DriftSpec struct {
	Kind string `json:"kind"` // static | blend | abrupt | hotspot | growskew | schedule | controller
	// Gen backs "static"; Start/End back blend/abrupt/controller (the
	// controller's base and target distributions).
	Gen      *GenSpec `json:"gen,omitempty"`
	StartGen *GenSpec `json:"startGen,omitempty"`
	EndGen   *GenSpec `json:"endGen,omitempty"`
	// At is the abrupt switch point.
	At float64 `json:"at,omitempty"`
	// Hotspot parameters.
	HotFraction float64 `json:"hotFraction,omitempty"`
	WindowSize  float64 `json:"windowSize,omitempty"`
	Laps        float64 `json:"laps,omitempty"`
	// GrowSkew parameters.
	MaxTheta float64 `json:"maxTheta,omitempty"`
	Universe uint64  `json:"universe,omitempty"`
	// Schedule segments.
	Segments []DriftSpec `json:"segments,omitempty"`
	// Controller parameters: the drift-intensity factor D in [0,1], the
	// intensity profile ("const", "ramp", "step@0.5", "sine@2"), and an
	// optional KS-divergence normalization target making D comparable
	// across base/target pairs.
	Factor    float64 `json:"factor,omitempty"`
	Profile   string  `json:"profile,omitempty"`
	Normalize float64 `json:"normalize,omitempty"`
}

// Build constructs the drift process, deriving seeds from base.
func (d DriftSpec) Build(base uint64) (distgen.Drift, error) {
	return d.buildWith(base, -1)
}

// buildWith is Build with an optional drift-factor override: a value in
// [0,1] replaces the factor of every "controller" clause — the -drift-factor
// sweep knob. Negative leaves the document's factors.
func (d DriftSpec) buildWith(base uint64, driftFactor float64) (distgen.Drift, error) {
	switch d.Kind {
	case "", "static":
		if d.Gen == nil {
			return nil, fmt.Errorf("config: static drift requires gen")
		}
		g, err := d.Gen.Build(base)
		if err != nil {
			return nil, err
		}
		return distgen.Static{G: g}, nil
	case "blend", "abrupt":
		if d.StartGen == nil || d.EndGen == nil {
			return nil, fmt.Errorf("config: %s drift requires startGen and endGen", d.Kind)
		}
		s, err := d.StartGen.Build(base + 1)
		if err != nil {
			return nil, err
		}
		e, err := d.EndGen.Build(base + 2)
		if err != nil {
			return nil, err
		}
		if d.Kind == "blend" {
			return distgen.NewBlend(base, s, e), nil
		}
		at := d.At
		if at <= 0 || at >= 1 {
			at = 0.5
		}
		return distgen.NewAbrupt(base, s, e, at), nil
	case "hotspot":
		hot, win, laps := d.HotFraction, d.WindowSize, d.Laps
		if hot <= 0 {
			hot = 0.9
		}
		if win <= 0 {
			win = 0.05
		}
		if laps <= 0 {
			laps = 1
		}
		return distgen.NewMovingHotspot(base, hot, win, laps), nil
	case "growskew":
		mt := d.MaxTheta
		if mt <= 0 {
			mt = 1.2
		}
		u := d.Universe
		if u == 0 {
			u = 1 << 20
		}
		return distgen.NewGrowingSkew(base, mt, u), nil
	case "controller":
		if d.StartGen == nil || d.EndGen == nil {
			return nil, fmt.Errorf("config: controller drift requires startGen (base) and endGen (target)")
		}
		factor := d.Factor
		if driftFactor >= 0 {
			factor = driftFactor
		}
		if factor < 0 || factor > 1 {
			return nil, fmt.Errorf("config: controller factor %v outside [0,1]", factor)
		}
		prof, err := driftctl.ParseProfile(d.Profile)
		if err != nil {
			return nil, err
		}
		// Validate both specs once so the seed-parameterized factories
		// below cannot fail (build errors depend only on the spec fields).
		if _, err := d.StartGen.Build(base + 1); err != nil {
			return nil, err
		}
		if _, err := d.EndGen.Build(base + 2); err != nil {
			return nil, err
		}
		baseF := func(seed uint64) distgen.Generator {
			g, _ := d.StartGen.Build(seed)
			return g
		}
		targetF := func(seed uint64) distgen.Generator {
			g, _ := d.EndGen.Build(seed)
			return g
		}
		knob := driftctl.Knob{Factor: factor, Profile: prof}
		return driftctl.NewCalibrated(base, baseF, targetF, knob, d.Normalize), nil
	case "schedule":
		if len(d.Segments) == 0 {
			return nil, fmt.Errorf("config: schedule requires segments")
		}
		segs := make([]distgen.Drift, 0, len(d.Segments))
		for i, s := range d.Segments {
			dr, err := s.buildWith(base+uint64(i)*101, driftFactor)
			if err != nil {
				return nil, err
			}
			segs = append(segs, dr)
		}
		return distgen.NewSchedule(segs...), nil
	default:
		return nil, fmt.Errorf("config: unknown drift kind %q", d.Kind)
	}
}

// ArrivalSpec names an arrival process.
type ArrivalSpec struct {
	Kind      string  `json:"kind"` // closed | poisson | diurnal | bursty | session
	Rate      float64 `json:"rate,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
	Cycles    float64 `json:"cycles,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
	Fraction  float64 `json:"fraction,omitempty"`
	Periods   float64 `json:"periods,omitempty"`
	// Session parameters (workload.SessionArrival).
	ThinkNs    int64 `json:"thinkNs,omitempty"`
	IntraGapNs int64 `json:"intraGapNs,omitempty"`
	MinOps     int   `json:"minOps,omitempty"`
	MaxOps     int   `json:"maxOps,omitempty"`
}

// Build constructs the arrival process.
func (a ArrivalSpec) Build(base uint64) (workload.Arrival, error) {
	switch a.Kind {
	case "", "closed":
		return workload.ClosedLoop{}, nil
	case "poisson":
		if a.Rate <= 0 {
			return nil, fmt.Errorf("config: poisson requires rate")
		}
		return workload.NewPoisson(base, a.Rate), nil
	case "diurnal":
		if a.Rate <= 0 {
			return nil, fmt.Errorf("config: diurnal requires rate")
		}
		amp, cyc := a.Amplitude, a.Cycles
		if amp <= 0 || amp >= 1 {
			amp = 0.5
		}
		if cyc <= 0 {
			cyc = 1
		}
		return workload.NewDiurnal(base, a.Rate, amp, cyc), nil
	case "bursty":
		if a.Rate <= 0 {
			return nil, fmt.Errorf("config: bursty requires rate")
		}
		f, fr, p := a.Factor, a.Fraction, a.Periods
		if f < 1 {
			f = 10
		}
		if fr <= 0 || fr >= 1 {
			fr = 0.1
		}
		if p <= 0 {
			p = 4
		}
		return workload.NewBursty(base, a.Rate, f, fr, p), nil
	case "session":
		think := a.ThinkNs
		if think <= 0 {
			think = 2_000_000 // 2ms virtual think time
		}
		intra := a.IntraGapNs
		if intra <= 0 || intra >= think {
			intra = think / 40
		}
		lo, hi := a.MinOps, a.MaxOps
		if lo <= 0 {
			lo = 3
		}
		if hi < lo {
			hi = lo + 6
		}
		return workload.NewSessionArrival(base, think, intra, lo, hi), nil
	default:
		return nil, fmt.Errorf("config: unknown arrival kind %q", a.Kind)
	}
}

// Options are CLI-level overrides applied while building a scenario.
type Options struct {
	// DriftFactor, when in [0,1], overrides the factor of every
	// "controller" drift clause — the -drift-factor sweep knob. Negative
	// (the zero value via NoOverrides) keeps the document's factors.
	DriftFactor float64
	// Session, when non-nil, replaces the document's session clause.
	Session *workload.SessionSpec
}

// NoOverrides is the identity Options value: Build(doc) == BuildWith(doc, NoOverrides).
func NoOverrides() Options { return Options{DriftFactor: -1} }

// Build converts the document into a runnable scenario.
func (s Scenario) Build() (core.Scenario, error) {
	return s.BuildWith(NoOverrides())
}

// BuildWith converts the document into a runnable scenario, applying the
// given CLI overrides.
func (s Scenario) BuildWith(opts Options) (core.Scenario, error) {
	out := core.Scenario{
		Name:        s.Name,
		Seed:        s.Seed,
		InitialSize: s.InitialSize,
		TrainBefore: s.TrainBefore,
		IntervalNs:  s.IntervalNs,
		SLANs:       s.SLANs,
	}
	if s.Session != nil {
		out.Session = &workload.SessionSpec{GapNs: s.Session.GapNs, BudgetNs: s.Session.BudgetNs}
	}
	if opts.Session != nil {
		out.Session = opts.Session
	}
	gen, err := s.InitialData.Build(s.Seed + 1)
	if err != nil {
		return core.Scenario{}, fmt.Errorf("config: initialData: %w", err)
	}
	out.InitialData = gen
	traces := make(map[string]*workload.Trace)
	for i, p := range s.Phases {
		base := s.Seed + uint64(i+2)*1009
		if p.Source != nil && p.Source.Kind != "" && p.Source.Kind != "generator" {
			src, n, err := p.Source.build(base, traces)
			if err != nil {
				return core.Scenario{}, fmt.Errorf("config: phase %d source: %w", i, err)
			}
			ops := p.Ops
			if ops == 0 {
				ops = n // trace replay defaults to the full recording
			}
			if n > 0 && ops > n {
				return core.Scenario{}, fmt.Errorf("config: phase %d asks for %d ops but the trace holds %d", i, ops, n)
			}
			out.Phases = append(out.Phases, core.Phase{
				Name:          p.Name,
				Ops:           ops,
				Source:        src,
				RetrainBefore: p.RetrainBefore,
			})
			continue
		}
		access, err := p.Access.buildWith(base, opts.DriftFactor)
		if err != nil {
			return core.Scenario{}, fmt.Errorf("config: phase %d access: %w", i, err)
		}
		spec := workload.Spec{
			Name:   p.Name,
			Mix:    p.Mix.build(),
			Access: access,
		}
		if p.InsertKeys != nil {
			ins, err := p.InsertKeys.buildWith(base+13, opts.DriftFactor)
			if err != nil {
				return core.Scenario{}, fmt.Errorf("config: phase %d insertKeys: %w", i, err)
			}
			spec.InsertKeys = ins
		}
		if p.MixEnd != nil {
			me := p.MixEnd.build()
			spec.MixEnd = &me
		}
		phase := core.Phase{
			Name:          p.Name,
			Ops:           p.Ops,
			Workload:      spec,
			RetrainBefore: p.RetrainBefore,
		}
		if p.Arrival != nil {
			arr, err := p.Arrival.Build(base + 17)
			if err != nil {
				return core.Scenario{}, fmt.Errorf("config: phase %d arrival: %w", i, err)
			}
			phase.Arrival = arr
		}
		out.Phases = append(out.Phases, phase)
	}
	if err := out.Validate(); err != nil {
		return core.Scenario{}, err
	}
	return out, nil
}

// Load reads and builds a scenario from a JSON file.
func Load(path string) (core.Scenario, error) {
	return LoadWith(path, NoOverrides())
}

// LoadWith reads and builds a scenario from a JSON file with overrides.
func LoadWith(path string, opts Options) (core.Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Scenario{}, fmt.Errorf("config: %w", err)
	}
	return ParseWith(data, opts)
}

// Parse builds a scenario from JSON bytes.
func Parse(data []byte) (core.Scenario, error) {
	return ParseWith(data, NoOverrides())
}

// ParseWith builds a scenario from JSON bytes with overrides.
func ParseWith(data []byte, opts Options) (core.Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return core.Scenario{}, fmt.Errorf("config: parsing: %w", err)
	}
	return s.BuildWith(opts)
}
