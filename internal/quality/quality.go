// Package quality implements the dataset/workload suitability scorer the
// paper sketches in §V-C: "a software tool that evaluates the quality and
// relevance of a given dataset for the benchmark. For example, this tool
// could attribute low marks to uniform data distributions and workloads
// while favoring datasets exhibiting skew or varying query load."
//
// Scores are in [0, 1] per dimension; the overall score is their weighted
// mean. The tool is deliberately heuristic — its role is to gate obviously
// uninformative inputs, not to rank good ones precisely.
package quality

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/similarity"
)

// Report carries the per-dimension scores for a dataset/workload pair.
type Report struct {
	// SkewScore rewards non-uniform key-frequency distributions.
	SkewScore float64
	// ShapeScore rewards non-trivial key-space layout (clusters,
	// segments) that a CDF model must actually learn.
	ShapeScore float64
	// DriftScore rewards distribution change across the trace.
	DriftScore float64
	// LoadScore rewards varying arrival intensity (bursts, diurnality).
	LoadScore float64
	// Overall is the weighted mean.
	Overall float64
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("quality{skew=%.2f shape=%.2f drift=%.2f load=%.2f overall=%.2f}",
		r.SkewScore, r.ShapeScore, r.DriftScore, r.LoadScore, r.Overall)
}

// Weights for Overall. Drift dominates: it is the property the whole
// benchmark exists to exercise (Lesson 1).
const (
	wSkew  = 0.2
	wShape = 0.2
	wDrift = 0.4
	wLoad  = 0.2
)

// Score evaluates a key trace (keys in arrival order) and an optional
// arrival-gap trace (ns between consecutive requests; nil skips LoadScore
// and re-weights). The trace is split into halves for drift detection.
func Score(keys []uint64, gaps []int64) Report {
	var r Report
	if len(keys) == 0 {
		return r
	}
	r.SkewScore = skewScore(keys)
	r.ShapeScore = shapeScore(keys)
	r.DriftScore = driftScore(keys)
	if len(gaps) > 1 {
		r.LoadScore = loadScore(gaps)
		r.Overall = wSkew*r.SkewScore + wShape*r.ShapeScore +
			wDrift*r.DriftScore + wLoad*r.LoadScore
	} else {
		total := wSkew + wShape + wDrift
		r.Overall = (wSkew*r.SkewScore + wShape*r.ShapeScore + wDrift*r.DriftScore) / total
	}
	return r
}

// skewScore measures key-frequency concentration via normalized entropy:
// uniform access -> 0, single hot key -> 1.
func skewScore(keys []uint64) float64 {
	counts := make(map[uint64]int, len(keys)/2)
	for _, k := range keys {
		counts[k]++
	}
	n := float64(len(keys))
	if len(counts) <= 1 {
		return 1 // one key: maximally skewed
	}
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	hMax := math.Log2(float64(len(counts)))
	if hMax == 0 {
		return 1
	}
	return clamp01(1 - h/hMax)
}

// shapeScore measures how far the sorted key layout departs from a
// straight line (a perfectly uniform/sequential layout a single linear
// model fits exactly): the normalized mean absolute deviation of the
// empirical CDF from linear.
func shapeScore(keys []uint64) float64 {
	xs := append([]uint64(nil), keys...)
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	lo, hi := xs[0], xs[len(xs)-1]
	if hi == lo {
		return 0
	}
	span := float64(hi - lo)
	n := float64(len(xs) - 1)
	var dev float64
	for i, k := range xs {
		expected := float64(i) / n // linear CDF position
		actual := float64(k-lo) / span
		dev += math.Abs(actual - expected)
	}
	// Mean deviation of 0.25 (the maximum for a monotone CDF is 0.5)
	// already indicates strong structure; scale so 0.25 -> 1.
	return clamp01(dev / float64(len(xs)) * 4)
}

// driftScore compares the first and last third of the trace with the KS
// statistic (the same Φ the benchmark uses for Figure 1a).
func driftScore(keys []uint64) float64 {
	if len(keys) < 6 {
		return 0
	}
	third := len(keys) / 3
	early := keys[:third]
	late := keys[len(keys)-third:]
	// KS in [0,1]; same-distribution noise gives small values. Rescale
	// so KS >= 0.5 saturates.
	return clamp01(similarity.KS(early, late) * 2)
}

// loadScore measures arrival-intensity variation: the coefficient of
// variation of per-window arrival counts, saturating at 1.
func loadScore(gaps []int64) float64 {
	if len(gaps) < 10 {
		return 0
	}
	// Bucket arrivals into 20 equal time windows.
	var total int64
	for _, g := range gaps {
		if g < 0 {
			g = 0
		}
		total += g
	}
	if total == 0 {
		return 0
	}
	const windows = 20
	counts := make([]float64, windows)
	var t int64
	for _, g := range gaps {
		if g < 0 {
			g = 0
		}
		t += g
		w := int(float64(t) / float64(total) * windows)
		if w >= windows {
			w = windows - 1
		}
		counts[w]++
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= windows
	if mean == 0 {
		return 0
	}
	var varSum float64
	for _, c := range counts {
		d := c - mean
		varSum += d * d
	}
	cv := math.Sqrt(varSum/windows) / mean
	return clamp01(cv)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Grade maps an overall score to the coarse verdict the CLI prints.
func Grade(overall float64) string {
	switch {
	case overall >= 0.6:
		return "excellent benchmark input"
	case overall >= 0.4:
		return "good benchmark input"
	case overall >= 0.2:
		return "marginal: consider adding drift or skew"
	default:
		return "poor: too uniform/static to exercise a learned system"
	}
}
