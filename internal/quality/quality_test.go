package quality

import (
	"testing"

	"repro/internal/distgen"
	"repro/internal/workload"
)

func TestEmptyTrace(t *testing.T) {
	r := Score(nil, nil)
	if r.Overall != 0 {
		t.Fatalf("empty trace scored %v", r.Overall)
	}
}

func TestUniformStaticScoresLow(t *testing.T) {
	keys := distgen.NewUniform(1, 0, 1<<40).Keys(20000)
	r := Score(keys, nil)
	if r.Overall > 0.2 {
		t.Fatalf("uniform static trace scored %v: %s", r.Overall, r)
	}
	if r.SkewScore > 0.15 {
		t.Fatalf("uniform skew score %v", r.SkewScore)
	}
	if r.DriftScore > 0.2 {
		t.Fatalf("static drift score %v", r.DriftScore)
	}
}

func TestSkewedScoresAboveUniform(t *testing.T) {
	uni := Score(distgen.NewUniform(2, 0, 1<<40).Keys(20000), nil)
	skewed := Score(distgen.NewZipfKeys(3, 1.3, 1000).Keys(20000), nil)
	if skewed.SkewScore <= uni.SkewScore {
		t.Fatalf("skew not rewarded: %v vs %v", skewed.SkewScore, uni.SkewScore)
	}
	if skewed.Overall <= uni.Overall {
		t.Fatalf("overall not ordered: %v vs %v", skewed.Overall, uni.Overall)
	}
}

func TestClusteredShapeScores(t *testing.T) {
	uni := Score(distgen.NewUniform(4, 0, 1<<40).Keys(10000), nil)
	clustered := Score(distgen.NewClustered(5, 5, 1e8).Keys(10000), nil)
	if clustered.ShapeScore <= uni.ShapeScore {
		t.Fatalf("shape not rewarded: %v vs %v", clustered.ShapeScore, uni.ShapeScore)
	}
}

func TestDriftingScoresHigh(t *testing.T) {
	drift := distgen.NewBlend(6,
		distgen.NewUniform(7, 0, 1<<30),
		distgen.NewUniform(8, 1<<39, 1<<40))
	var keys []uint64
	const n = 20000
	for i := 0; i < n; i++ {
		keys = append(keys, drift.KeysAt(float64(i)/n, 1)[0])
	}
	r := Score(keys, nil)
	if r.DriftScore < 0.8 {
		t.Fatalf("full shift drift score %v", r.DriftScore)
	}
	static := Score(distgen.NewUniform(9, 0, 1<<30).Keys(n), nil)
	if r.Overall <= static.Overall {
		t.Fatal("drifting trace must outscore static")
	}
}

func TestLoadVariationScored(t *testing.T) {
	// Constant arrivals vs. bursty arrivals.
	constant := make([]int64, 20000)
	for i := range constant {
		constant[i] = 1000
	}
	b := workload.NewBursty(10, 1000, 20, 0.1, 4)
	bursty := make([]int64, 20000)
	for i := range bursty {
		bursty[i] = b.NextGap(float64(i) / 20000)
	}
	keys := distgen.NewUniform(11, 0, 1<<40).Keys(20000)
	rc := Score(keys, constant)
	rb := Score(keys, bursty)
	if rb.LoadScore <= rc.LoadScore {
		t.Fatalf("bursty load not rewarded: %v vs %v", rb.LoadScore, rc.LoadScore)
	}
}

func TestLoadlessReweighting(t *testing.T) {
	keys := distgen.NewZipfKeys(12, 1.2, 1000).Keys(10000)
	withNil := Score(keys, nil)
	if withNil.LoadScore != 0 {
		t.Fatal("nil gaps must skip load score")
	}
	if withNil.Overall <= 0 {
		t.Fatal("re-weighted overall must still reflect other dimensions")
	}
}

func TestScoresBounded(t *testing.T) {
	gens := []distgen.Generator{
		distgen.NewUniform(1, 0, 100),
		distgen.NewZipfKeys(2, 2.0, 10),
		distgen.NewSequential(3, 0, 1),
		distgen.NewEmail(4),
	}
	for _, g := range gens {
		r := Score(g.Keys(5000), nil)
		for name, v := range map[string]float64{
			"skew": r.SkewScore, "shape": r.ShapeScore,
			"drift": r.DriftScore, "overall": r.Overall,
		} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: %s score %v out of [0,1]", g.Name(), name, v)
			}
		}
	}
}

func TestSingleKeyTrace(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = 42
	}
	r := Score(keys, nil)
	if r.SkewScore != 1 {
		t.Fatalf("single-key skew = %v", r.SkewScore)
	}
	if r.ShapeScore != 0 {
		t.Fatalf("single-key shape = %v", r.ShapeScore)
	}
}

func TestGradeBands(t *testing.T) {
	for _, c := range []struct {
		score float64
		want  string
	}{
		{0.9, "excellent benchmark input"},
		{0.5, "good benchmark input"},
		{0.3, "marginal: consider adding drift or skew"},
		{0.05, "poor: too uniform/static to exercise a learned system"},
	} {
		if got := Grade(c.score); got != c.want {
			t.Fatalf("Grade(%v) = %q", c.score, got)
		}
	}
}

func TestReportString(t *testing.T) {
	if (Report{}).String() == "" {
		t.Fatal("empty report string")
	}
}
