package service

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/report"
)

func testEntry(id, scenario, sut string, tput float64) Entry {
	return Entry{
		JobID:    id,
		Scenario: scenario,
		SUT:      sut,
		Seed:     42,
		Result: report.ResultView{
			Scenario:   scenario,
			SUT:        sut,
			Completed:  1000,
			DurationNs: 1_000_000_000,
			Throughput: tput,
			Latency:    report.LatencySummary{Count: 1000, P50Ns: 100, P99Ns: 900},
		},
	}
}

func TestStoreReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range []Entry{
		testEntry("j1", "s", "btree", 100),
		testEntry("j2", "s", "rmi", 200),
	} {
		if err := st.Append(e); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := st2.Entries()
	if len(got) != 2 {
		t.Fatalf("reloaded %d entries, want 2", len(got))
	}
	if got[0].JobID != "j1" || got[1].JobID != "j2" {
		t.Fatalf("order lost: %s, %s", got[0].JobID, got[1].JobID)
	}
	if got[1].Result.Throughput != 200 {
		t.Fatalf("result view lost: %+v", got[1].Result)
	}
	// Appends after reload extend, not clobber.
	if err := st2.Append(testEntry("j3", "s", "alex", 300)); err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 3 {
		t.Fatalf("len = %d after post-reload append", st2.Len())
	}
}

func TestStoreReloadTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	st.Append(testEntry("j1", "s", "btree", 100))
	st.Append(testEntry("j2", "s", "rmi", 200))
	st.Close()

	// Simulate a crash mid-append: truncate into the middle of j2's line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-25], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(path)
	if err != nil {
		t.Fatalf("reload after torn tail: %v", err)
	}
	if st2.Len() != 1 {
		t.Fatalf("reloaded %d entries, want 1 (torn j2 dropped)", st2.Len())
	}
	// The torn tail must be gone: the next append forms a valid line.
	if err := st2.Append(testEntry("j3", "s", "alex", 300)); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	st3, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	got := st3.Entries()
	if len(got) != 2 || got[0].JobID != "j1" || got[1].JobID != "j3" {
		t.Fatalf("after torn-tail repair got %d entries: %+v", len(got), got)
	}
}

func TestStoreInMemory(t *testing.T) {
	st, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testEntry("j1", "s", "btree", 100)); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("len = %d", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreAppendSyncFailureRollsBack injects an fsync failure and checks
// the failed entry leaves no trace: not in memory, and — because the
// partial line is truncated away — not resurrected by a reload either,
// even though its bytes may have reached the file before the sync failed.
func TestStoreAppendSyncFailureRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testEntry("j1", "s", "btree", 100)); err != nil {
		t.Fatal(err)
	}

	injected := false
	st.fsync = func(*os.File) error { injected = true; return os.ErrInvalid }
	if err := st.Append(testEntry("j2", "s", "rmi", 200)); err == nil {
		t.Fatal("append with failing fsync did not error")
	}
	if !injected {
		t.Fatal("fsync hook never ran")
	}
	if st.Len() != 1 {
		t.Fatalf("failed append left %d entries in memory, want 1", st.Len())
	}

	// The store stays usable once the disk recovers.
	st.fsync = (*os.File).Sync
	if err := st.Append(testEntry("j3", "s", "art", 300)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := st2.Entries()
	if len(got) != 2 || got[0].JobID != "j1" || got[1].JobID != "j3" {
		t.Fatalf("reload after sync failure got %+v, want [j1 j3]", got)
	}
	for _, e := range got {
		if e.JobID == "j2" {
			t.Fatal("rolled-back entry j2 resurrected by reload")
		}
	}
}
