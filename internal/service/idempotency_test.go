package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestSubmitDuplicateIDIdempotent is the cluster dispatch contract: a
// re-submitted job ID returns the existing job (200) instead of enqueuing
// a second run, so a coordinator re-sending after an ambiguous failure
// cannot double-execute a benchmark.
func TestSubmitDuplicateIDIdempotent(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2})
	body := fmt.Sprintf(`{"id":"c42","sut":"btree","seed":3,"spec":%s}`, detSpec)

	code, data := postJSON(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", code, data)
	}
	var first JobView
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if first.ID != "c42" {
		t.Fatalf("external ID not honored: got %q", first.ID)
	}

	code, data = postJSON(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusOK {
		t.Fatalf("duplicate submit: status %d, want 200 (dedup): %s", code, data)
	}
	var second JobView
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if second.ID != "c42" {
		t.Fatalf("duplicate answered with job %q, want c42", second.ID)
	}

	waitState(t, ts, "c42", JobDone)

	// Exactly one run happened: one job listed, one stored result.
	code, data = get(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 {
		t.Fatalf("duplicate ID created %d jobs, want 1: %+v", len(list.Jobs), list.Jobs)
	}

	// Auto-assigned IDs must not collide with externally taken names.
	auto := submit(t, ts, fmt.Sprintf(`{"sut":"rmi","seed":3,"spec":%s}`, detSpec))
	if auto.ID == "c42" {
		t.Fatalf("auto ID collided with external ID")
	}
}

// TestSubmitBadExternalID rejects IDs that would break URLs or the store.
func TestSubmitBadExternalID(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	for _, id := range []string{"a/b", "a b", strings.Repeat("x", 200)} {
		body := fmt.Sprintf(`{"id":%q,"sut":"btree","seed":3,"spec":%s}`, id, detSpec)
		code, data := postJSON(t, ts.URL+"/v1/jobs", body)
		if code != http.StatusBadRequest {
			t.Fatalf("id %q: status %d, want 400: %s", id, code, data)
		}
	}
}

// TestStoreEndpoints exercises the anti-entropy pull surface: the ID list
// diff set and the selective entry fetch.
func TestStoreEndpoints(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2})
	for _, sut := range []string{"btree", "rmi"} {
		v := submit(t, ts, fmt.Sprintf(`{"sut":%q,"seed":3,"spec":%s}`, sut, detSpec))
		waitState(t, ts, v.ID, JobDone)
	}

	code, data := get(t, ts.URL+"/v1/store/ids")
	if code != http.StatusOK {
		t.Fatalf("store ids: %d: %s", code, data)
	}
	var ids struct {
		IDs []string `json:"ids"`
	}
	if err := json.Unmarshal(data, &ids); err != nil {
		t.Fatal(err)
	}
	if len(ids.IDs) != 2 {
		t.Fatalf("store ids = %v, want 2", ids.IDs)
	}

	// Selective fetch returns exactly the asked-for entry; unknown IDs are
	// skipped, not errors (the puller's view may be ahead of this node).
	code, data = get(t, ts.URL+"/v1/store/entries?ids="+ids.IDs[1]+",nope")
	if code != http.StatusOK {
		t.Fatalf("store entries: %d: %s", code, data)
	}
	var page struct {
		Entries []Entry `json:"entries"`
	}
	if err := json.Unmarshal(data, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 1 || page.Entries[0].JobID != ids.IDs[1] {
		t.Fatalf("selective fetch got %+v, want just %s", page.Entries, ids.IDs[1])
	}

	// No filter means the full store.
	code, data = get(t, ts.URL+"/v1/store/entries")
	if code != http.StatusOK {
		t.Fatalf("store entries (all): %d", code)
	}
	if err := json.Unmarshal(data, &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 2 {
		t.Fatalf("full fetch got %d entries, want 2", len(page.Entries))
	}
}
