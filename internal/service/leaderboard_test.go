package service

import (
	"testing"

	"repro/internal/report"
)

func lbEntry(id, sut string, tput float64, p99 int64, train int64) Entry {
	return Entry{
		JobID:    id,
		Scenario: "s",
		SUT:      sut,
		Result: report.ResultView{
			Scenario:         "s",
			SUT:              sut,
			Throughput:       tput,
			Latency:          report.LatencySummary{P50Ns: p99 / 2, P99Ns: p99},
			OfflineTrainWork: train,
		},
	}
}

func TestLeaderboardThroughput(t *testing.T) {
	entries := []Entry{
		lbEntry("j1", "btree", 100, 500, 0),
		lbEntry("j2", "rmi", 300, 200, 5000),
		lbEntry("j3", "alex", 200, 300, 2000),
		lbEntry("j4", "other-scenario", 999, 1, 0), // different scenario name in SUT slot
	}
	entries[3].Scenario = "other"
	rows, err := Leaderboard(entries, "s", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (other scenario filtered)", len(rows))
	}
	if rows[0].SUT != "rmi" || rows[1].SUT != "alex" || rows[2].SUT != "btree" {
		t.Fatalf("throughput order wrong: %s %s %s", rows[0].SUT, rows[1].SUT, rows[2].SUT)
	}
	if rows[0].Rank != 1 || rows[2].Rank != 3 {
		t.Fatalf("ranks wrong: %+v", rows)
	}
}

func TestLeaderboardLatestRunWins(t *testing.T) {
	entries := []Entry{
		lbEntry("j1", "rmi", 100, 500, 1000),
		lbEntry("j2", "rmi", 400, 100, 1000), // resubmission improves
	}
	rows, err := Leaderboard(entries, "s", "throughput")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Runs != 2 || rows[0].Throughput != 400 {
		t.Fatalf("latest-run aggregation wrong: %+v", rows)
	}
}

func TestLeaderboardP99(t *testing.T) {
	entries := []Entry{
		lbEntry("j1", "btree", 100, 500, 0),
		lbEntry("j2", "rmi", 300, 200, 5000),
	}
	rows, err := Leaderboard(entries, "s", "p99")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].SUT != "rmi" || rows[1].SUT != "btree" {
		t.Fatalf("p99 order wrong: %+v", rows)
	}
}

func TestLeaderboardCost(t *testing.T) {
	entries := []Entry{
		lbEntry("j1", "btree", 200, 500, 0),    // traditional baseline
		lbEntry("j2", "rmi", 300, 200, 5000),   // outperforms, cost 5000
		lbEntry("j3", "alex", 250, 300, 2000),  // outperforms, cost 2000
		lbEntry("j4", "slowml", 150, 900, 100), // trains but never outperforms
	}
	rows, err := Leaderboard(entries, "s", "cost")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].SUT != "alex" || rows[1].SUT != "rmi" {
		t.Fatalf("cost order wrong: %+v", rows)
	}
	if rows[0].CostToOutperform != 2000 || rows[1].CostToOutperform != 5000 {
		t.Fatalf("costs wrong: %+v", rows)
	}
	for _, r := range rows[2:] {
		if r.CostToOutperform != -1 {
			t.Fatalf("%s should not have a cost-to-outperform: %+v", r.SUT, r)
		}
	}
}

func TestLeaderboardUnknownMetric(t *testing.T) {
	if _, err := Leaderboard(nil, "s", "vibes"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}
