package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/core"
)

// TestJobTraceRecordReplay walks the service's record→replay loop: a
// recording job serves its binary trace, and a second job replaying that
// trace as an inline source produces byte-identical result JSON.
func TestJobTraceRecordReplay(t *testing.T) {
	_, ts := newTestService(t, Config{TraceDir: t.TempDir()})

	rec := submit(t, ts, `{"sut": "btree", "record": true, "spec": `+detSpec+`}`)
	waitState(t, ts, rec.ID, JobDone)
	code, golden := get(t, ts.URL+"/v1/jobs/"+rec.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, golden)
	}
	code, traceData := get(t, ts.URL+"/v1/jobs/"+rec.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: %d: %s", code, traceData)
	}

	// The replay spec carries the trace inline (base64 in JSON) — no
	// shared filesystem with the service needed. Everything but the op
	// source matches the recorded scenario.
	spec := map[string]any{
		"name":        "det",
		"seed":        3,
		"initialData": map[string]any{"kind": "uniform"},
		"initialSize": 2000,
		"trainBefore": true,
		"intervalNs":  1_000_000,
		"phases": []any{map[string]any{
			"name":   "p",
			"source": map[string]any{"kind": "trace", "data": traceData},
		}},
	}
	body, err := json.Marshal(map[string]any{"sut": "btree", "spec": spec})
	if err != nil {
		t.Fatal(err)
	}
	rep := submit(t, ts, string(body))
	waitState(t, ts, rep.ID, JobDone)
	code, replayed := get(t, ts.URL+"/v1/jobs/"+rep.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("replay result: %d: %s", code, replayed)
	}
	if !bytes.Equal(golden, replayed) {
		t.Fatalf("replayed result JSON diverges from recorded run\n--- recorded ---\n%s\n--- replayed ---\n%s", golden, replayed)
	}
}

func TestJobTraceErrors(t *testing.T) {
	// Recording refused when no trace directory is configured.
	_, tsOff := newTestService(t, Config{})
	code, data := postJSON(t, tsOff.URL+"/v1/jobs", `{"sut": "btree", "record": true, "spec": `+detSpec+`}`)
	if code != http.StatusBadRequest {
		t.Fatalf("record without TraceDir: %d: %s", code, data)
	}

	// Sealed hold-outs cannot be recorded.
	holdouts := core.NewHoldoutRegistry()
	if err := holdouts.Register("sealed", func() core.Scenario { return core.Scenario{} }); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestService(t, Config{TraceDir: t.TempDir(), Holdouts: holdouts})
	code, data = postJSON(t, ts.URL+"/v1/jobs", `{"sut": "btree", "record": true, "holdout": "sealed"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("record holdout: %d: %s", code, data)
	}

	// A non-recording job has no trace.
	v := submit(t, ts, `{"sut": "btree", "spec": `+detSpec+`}`)
	waitState(t, ts, v.ID, JobDone)
	code, data = get(t, ts.URL+"/v1/jobs/"+v.ID+"/trace")
	if code != http.StatusConflict {
		t.Fatalf("trace of non-recording job: %d: %s", code, data)
	}

	// Unknown job.
	code, _ = get(t, ts.URL+"/v1/jobs/nope/trace")
	if code != http.StatusNotFound {
		t.Fatalf("trace of unknown job: %d", code)
	}
}
