package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// detSpec is a small deterministic inline scenario for e2e tests.
const detSpec = `{
  "name": "det",
  "seed": 3,
  "initialData": {"kind": "uniform"},
  "initialSize": 2000,
  "trainBefore": true,
  "intervalNs": 1000000,
  "phases": [{
    "name": "p",
    "ops": 5000,
    "mix": {"get": 0.9, "put": 0.1},
    "access": {"kind": "static", "gen": {"kind": "zipf", "theta": 1.1, "universe": 1048576}}
  }]
}`

// blockSUT blocks in Load until released — a controllable long run.
type blockSUT struct{ release chan struct{} }

func (b *blockSUT) Name() string                     { return "block" }
func (b *blockSUT) Load(keys, values []uint64)       { <-b.release }
func (b *blockSUT) Do(op workload.Op) core.OpResult  { return core.OpResult{Found: true, Work: 1} }

func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func submit(t *testing.T, ts *httptest.Server, body string) JobView {
	t.Helper()
	code, data := postJSON(t, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, data)
	}
	var v JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("submit response: %v: %s", err, data)
	}
	return v
}

func waitState(t *testing.T, ts *httptest.Server, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, data := get(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status poll: %d: %s", code, data)
		}
		var v JobView
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached terminal state %s (err %q), want %s", id, v.State, v.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

// TestSubmitPollResultDeterministic is the acceptance path: two identical
// submissions, polled to completion, must return byte-identical result
// JSON.
func TestSubmitPollResultDeterministic(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2})
	body := fmt.Sprintf(`{"sut":"rmi","seed":3,"spec":%s}`, detSpec)

	j1 := submit(t, ts, body)
	j2 := submit(t, ts, body)
	if j1.Scenario != "det" || j1.Seed != 3 {
		t.Fatalf("resolved job wrong: %+v", j1)
	}
	waitState(t, ts, j1.ID, JobDone)
	waitState(t, ts, j2.ID, JobDone)

	code, r1 := get(t, ts.URL+"/v1/jobs/"+j1.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, r1)
	}
	_, r2 := get(t, ts.URL+"/v1/jobs/"+j2.ID+"/result")
	if !bytes.Equal(r1, r2) {
		t.Fatal("identical submissions returned different result JSON")
	}
	var view struct {
		Scenario  string `json:"scenario"`
		Completed int64  `json:"completed"`
	}
	if err := json.Unmarshal(r1, &view); err != nil {
		t.Fatal(err)
	}
	if view.Scenario != "det" || view.Completed != 5000 {
		t.Fatalf("result content wrong: %+v", view)
	}
}

func TestQueueFull429(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // before cleanups: the pool drain needs the SUT unblocked
	suts := DefaultSUTs()
	suts["block"] = func() core.SUT { return &blockSUT{release: release} }
	_, ts := newTestService(t, Config{Workers: 1, QueueDepth: 1, SUTs: suts})

	blocked := fmt.Sprintf(`{"sut":"block","spec":%s}`, detSpec)
	j1 := submit(t, ts, blocked)
	waitState(t, ts, j1.ID, JobRunning) // worker occupied, queue empty
	submit(t, ts, blocked)              // fills the queue

	code, data := postJSON(t, ts.URL+"/v1/jobs", blocked)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overfull queue: status %d (%s), want 429", code, data)
	}
}

func TestJobTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // before cleanups: the pool drain needs the SUT unblocked
	suts := DefaultSUTs()
	suts["block"] = func() core.SUT { return &blockSUT{release: release} }
	_, ts := newTestService(t, Config{Workers: 1, SUTs: suts})

	j := submit(t, ts, fmt.Sprintf(`{"sut":"block","timeoutMs":30,"spec":%s}`, detSpec))
	v := waitState(t, ts, j.ID, JobTimeout)
	if !strings.Contains(v.Error, "deadline") {
		t.Fatalf("timeout error = %q", v.Error)
	}
	// No result, and the worker slot is free again for a real run.
	code, _ := get(t, ts.URL+"/v1/jobs/"+j.ID+"/result")
	if code != http.StatusConflict {
		t.Fatalf("result of timed-out job: %d, want 409", code)
	}
	j2 := submit(t, ts, fmt.Sprintf(`{"sut":"btree","spec":%s}`, detSpec))
	waitState(t, ts, j2.ID, JobDone)
}

func TestJobCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // before cleanups: the pool drain needs the SUT unblocked
	suts := DefaultSUTs()
	suts["block"] = func() core.SUT { return &blockSUT{release: release} }
	_, ts := newTestService(t, Config{Workers: 1, SUTs: suts})

	running := submit(t, ts, fmt.Sprintf(`{"sut":"block","spec":%s}`, detSpec))
	waitState(t, ts, running.ID, JobRunning)
	queued := submit(t, ts, fmt.Sprintf(`{"sut":"btree","spec":%s}`, detSpec))

	// Cancel the queued job first: it must never run.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: %d", resp.StatusCode)
	}
	waitState(t, ts, queued.ID, JobCanceled)

	// Cancel the running job.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, running.ID, JobCanceled)

	// Canceling a terminal job is a conflict.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of terminal job: %d, want 409", resp.StatusCode)
	}
}

func TestHoldoutSingleAttempt(t *testing.T) {
	reg := core.NewHoldoutRegistry()
	if err := reg.Register("sealed", func() core.Scenario {
		sc, err := BuiltinScenarios()["smoke"]()
		if err != nil {
			panic(err)
		}
		sc.Name = "sealed"
		return sc
	}); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestService(t, Config{Workers: 1, Holdouts: reg})

	code, data := get(t, ts.URL+"/v1/holdouts")
	if code != http.StatusOK || !strings.Contains(string(data), "sealed") {
		t.Fatalf("holdout listing: %d %s", code, data)
	}

	j1 := submit(t, ts, `{"sut":"rmi","holdout":"sealed"}`)
	waitState(t, ts, j1.ID, JobDone)

	j2 := submit(t, ts, `{"sut":"rmi","holdout":"sealed"}`)
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, data := get(t, ts.URL+"/v1/jobs/"+j2.ID)
		if code != http.StatusOK {
			t.Fatalf("poll: %d", code)
		}
		var v JobView
		json.Unmarshal(data, &v)
		if v.State == JobFailed {
			if !strings.Contains(v.Error, "already consumed") {
				t.Fatalf("second attempt error = %q", v.Error)
			}
			break
		}
		if v.State.Terminal() {
			t.Fatalf("second attempt ended %s, want failed", v.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("second attempt never resolved")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A different SUT still gets its attempt.
	j3 := submit(t, ts, `{"sut":"btree","holdout":"sealed"}`)
	waitState(t, ts, j3.ID, JobDone)
}

func TestLeaderboardAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2})
	for _, sut := range []string{"btree", "rmi"} {
		j := submit(t, ts, fmt.Sprintf(`{"sut":%q,"spec":%s}`, sut, detSpec))
		waitState(t, ts, j.ID, JobDone)
	}

	code, data := get(t, ts.URL+"/v1/leaderboard?scenario=det")
	if code != http.StatusOK {
		t.Fatalf("leaderboard: %d: %s", code, data)
	}
	var lb struct {
		Scenario string `json:"scenario"`
		Rows     []Row  `json:"rows"`
	}
	if err := json.Unmarshal(data, &lb); err != nil {
		t.Fatal(err)
	}
	if len(lb.Rows) != 2 {
		t.Fatalf("leaderboard rows = %d, want 2", len(lb.Rows))
	}
	if lb.Rows[0].Throughput < lb.Rows[1].Throughput {
		t.Fatalf("leaderboard not sorted by throughput: %+v", lb.Rows)
	}

	if code, _ := get(t, ts.URL+"/v1/leaderboard"); code != http.StatusBadRequest {
		t.Fatalf("leaderboard without scenario: %d, want 400", code)
	}

	code, data = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	page := string(data)
	for _, want := range []string{
		`lsbench_jobs{state="done"} 2`,
		"lsbench_queue_depth 0",
		"lsbench_runs_total 2",
		"lsbench_results_stored 2",
		"lsbench_run_latency_ns_count 2",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}

	code, data = get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(data), "ok") {
		t.Fatalf("healthz: %d %s", code, data)
	}
}

// TestStoreSurvivesRestart is the acceptance criterion: a new service on
// the same store path sees the previous runs in /v1/results and the
// leaderboard.
func TestStoreSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")

	svc1, err := New(Config{Workers: 1, StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(svc1.Handler())
	j := submit(t, ts1, fmt.Sprintf(`{"sut":"rmi","spec":%s}`, detSpec))
	waitState(t, ts1, j.ID, JobDone)
	ts1.Close()
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestService(t, Config{Workers: 1, StorePath: path})
	code, data := get(t, ts2.URL+"/v1/results?scenario=det")
	if code != http.StatusOK {
		t.Fatalf("results after restart: %d", code)
	}
	var res struct {
		Results []Entry `json:"results"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 || res.Results[0].SUT != "rmi" {
		t.Fatalf("restart lost results: %+v", res.Results)
	}
	code, data = get(t, ts2.URL+"/v1/leaderboard?scenario=det")
	if code != http.StatusOK || !strings.Contains(string(data), `"rmi"`) {
		t.Fatalf("leaderboard after restart: %d %s", code, data)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"no sut", fmt.Sprintf(`{"spec":%s}`, detSpec)},
		{"unknown sut", fmt.Sprintf(`{"sut":"nope","spec":%s}`, detSpec)},
		{"no selector", `{"sut":"rmi"}`},
		{"two selectors", fmt.Sprintf(`{"sut":"rmi","scenario":"smoke","spec":%s}`, detSpec)},
		{"unknown scenario", `{"sut":"rmi","scenario":"nope"}`},
		{"unknown holdout", `{"sut":"rmi","holdout":"nope"}`},
		{"seed without spec", `{"sut":"rmi","scenario":"smoke","seed":1}`},
		{"bad spec", `{"sut":"rmi","spec":{"name":"x"}}`},
		{"unknown field", `{"sut":"rmi","scenrio":"smoke"}`},
		{"negative timeout", fmt.Sprintf(`{"sut":"rmi","timeoutMs":-1,"spec":%s}`, detSpec)},
	}
	for _, c := range cases {
		if code, data := postJSON(t, ts.URL+"/v1/jobs", c.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, code, data)
		}
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Error("unknown job id not 404")
	}
}

func TestNamedScenarioAndCatalogEndpoints(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	code, data := get(t, ts.URL+"/v1/scenarios")
	if code != http.StatusOK || !strings.Contains(string(data), "smoke") {
		t.Fatalf("scenarios: %d %s", code, data)
	}
	code, data = get(t, ts.URL+"/v1/suts")
	if code != http.StatusOK || !strings.Contains(string(data), "kvstore") {
		t.Fatalf("suts: %d %s", code, data)
	}
	j := submit(t, ts, `{"sut":"hash","scenario":"smoke"}`)
	waitState(t, ts, j.ID, JobDone)
	code, data = get(t, ts.URL+"/v1/jobs/"+j.ID+"/result")
	if code != http.StatusOK || !strings.Contains(string(data), `"smoke"`) {
		t.Fatalf("named scenario result: %d %s", code, data)
	}
	// Jobs listing shows both states and order.
	code, data = get(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK || !strings.Contains(string(data), j.ID) {
		t.Fatalf("jobs listing: %d %s", code, data)
	}
}

func TestRequestLogging(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestService(t, Config{Workers: 1, LogWriter: &buf})
	get(t, ts.URL+"/healthz")
	line := strings.TrimSpace(buf.String())
	var entry struct {
		Method string `json:"method"`
		Path   string `json:"path"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("log line not JSON: %q", line)
	}
	if entry.Method != "GET" || entry.Path != "/healthz" || entry.Status != 200 {
		t.Fatalf("log entry wrong: %+v", entry)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for concurrent log writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
