package service

import (
	"encoding/json"

	"repro/internal/core"
)

// JobState is the lifecycle of a submitted benchmark job.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker slot.
	JobQueued JobState = "queued"
	// JobRunning: a queue worker is executing the run.
	JobRunning JobState = "running"
	// JobDone: finished; the result JSON is available.
	JobDone JobState = "done"
	// JobFailed: the run returned an error (bad scenario, spent hold-out…).
	JobFailed JobState = "failed"
	// JobCanceled: canceled via DELETE before completing.
	JobCanceled JobState = "canceled"
	// JobTimeout: exceeded its deadline and was abandoned.
	JobTimeout JobState = "timeout"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled || s == JobTimeout
}

// JobRequest is the POST /v1/jobs body. Exactly one of Scenario (a name
// from the service catalog), Holdout (a sealed hold-out name), or Spec
// (an inline internal/config scenario document) selects what to run.
type JobRequest struct {
	// ID, when set, names the job instead of the service's auto-assigned
	// "jN" counter — the hook cluster coordinators use to dispatch with
	// their own cluster-wide IDs. Submitting a duplicate ID returns the
	// existing job (200, not 202) instead of enqueuing a second run, so
	// re-dispatch after an ambiguous failure is idempotent.
	ID string `json:"id,omitempty"`
	// SUT names the system under test (see GET /v1/suts).
	SUT string `json:"sut"`
	// Scenario names a catalog scenario (see GET /v1/scenarios).
	Scenario string `json:"scenario,omitempty"`
	// Holdout names a sealed hold-out; the (holdout, SUT) pair is
	// consumed by the run — a second submission fails (paper §V-A).
	Holdout string `json:"holdout,omitempty"`
	// Spec is an inline scenario document (internal/config schema).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Seed overrides the spec's seed before building (inline specs
	// only); identical spec+seed submissions return byte-identical
	// result JSON.
	Seed *uint64 `json:"seed,omitempty"`
	// TimeoutMs overrides the service's default job timeout.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// Record asks the service to record the run's exact op stream as a
	// binary trace, retrievable from GET /v1/jobs/{id}/trace once the
	// job is done. Requires Config.TraceDir; refused for sealed
	// hold-outs (their workloads never leave the service).
	Record bool `json:"record,omitempty"`
}

// Job is one submitted run and its outcome.
type Job struct {
	ID       string
	Req      JobRequest
	Scenario string // resolved scenario/hold-out name for display
	Seed     uint64 // effective seed (0 for sealed hold-outs)
	State    JobState
	Err      string
	// ResultJSON is the encoded report.ResultView, byte-identical for
	// identical (scenario, seed) runs. Set only in state done.
	ResultJSON []byte

	// spec is the pre-built scenario for inline-spec jobs; named and
	// hold-out jobs build fresh at run time.
	spec *core.Scenario
	// tracePath is where the run's recording landed (Record jobs only),
	// set when the trace file is complete.
	tracePath string
	// cancel is closed by DELETE while the job is running.
	cancel   chan struct{}
	canceled bool
}

// JobView is the status JSON for a job.
type JobView struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Scenario string   `json:"scenario"`
	SUT      string   `json:"sut"`
	Seed     uint64   `json:"seed,omitempty"`
	Error    string   `json:"error,omitempty"`
}

// view snapshots the job for status responses. Callers must hold the
// service mutex.
func (j *Job) view() JobView {
	return JobView{
		ID:       j.ID,
		State:    j.State,
		Scenario: j.Scenario,
		SUT:      j.Req.SUT,
		Seed:     j.Seed,
		Error:    j.Err,
	}
}
