package service

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// statusWriter captures the status code and byte count a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// requestLog is one structured access-log line.
type requestLog struct {
	Time   string `json:"ts"`
	Method string `json:"method"`
	Path   string `json:"path"`
	Status int    `json:"status"`
	Bytes  int    `json:"bytes"`
	Micros int64  `json:"us"`
}

// withLogging wraps next with structured (JSON-lines) request logging to
// out. A nil writer disables logging.
func withLogging(out io.Writer, next http.Handler) http.Handler {
	if out == nil {
		return next
	}
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		line, err := json.Marshal(requestLog{
			Time:   start.UTC().Format(time.RFC3339Nano),
			Method: r.Method,
			Path:   r.URL.Path,
			Status: sw.status,
			Bytes:  sw.bytes,
			Micros: time.Since(start).Microseconds(),
		})
		if err != nil {
			return
		}
		mu.Lock()
		out.Write(append(line, '\n'))
		mu.Unlock()
	})
}
