package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/report"
)

// Entry is one persisted run outcome: the submission coordinates plus the
// full result view. One entry is one line of the store file.
type Entry struct {
	JobID    string            `json:"jobId"`
	Scenario string            `json:"scenario"`
	SUT      string            `json:"sut"`
	Seed     uint64            `json:"seed"`
	Result   report.ResultView `json:"result"`
}

// Store is an append-only JSON-lines result store. Appends are flushed
// and fsynced per entry; reload tolerates a torn final line (a crash
// mid-append), so restarting the service recovers every completed run.
type Store struct {
	mu sync.Mutex
	f  *os.File // nil for an in-memory store
	// size is the durable byte length: the offset just past the last
	// acknowledged entry. A failed append truncates back to it so disk
	// and the in-memory view never diverge.
	size    int64
	fsync   func(*os.File) error // swapped by tests to inject sync failures
	entries []Entry
}

// OpenStore opens (or creates) the store at path, reloading existing
// entries. An empty path yields a volatile in-memory store.
func OpenStore(path string) (*Store, error) {
	st := &Store{fsync: (*os.File).Sync}
	if path == "" {
		return st, nil
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	// good is the byte offset of the end of the last intact entry; a
	// torn tail (crash mid-append) is truncated away below.
	var good int64
	for len(data) > 0 {
		line := data
		consumed := len(data)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line = data[:i]
			consumed = i + 1
		}
		if len(bytes.TrimSpace(line)) == 0 {
			data = data[consumed:]
			good += int64(consumed)
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			break
		}
		st.entries = append(st.entries, e)
		data = data[consumed:]
		good += int64(consumed)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: store truncate: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: store seek: %w", err)
	}
	st.f = f
	st.size = good
	return st, nil
}

// Append persists one entry (one JSON line, fsynced) and adds it to the
// in-memory view. On any write or sync failure the partial line is rolled
// back (truncated away) and the entry is NOT added to memory: a failed
// Append leaves no trace, so a restart cannot resurrect an entry that
// Entries() never reported.
func (st *Store) Append(e Entry) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f != nil {
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("service: store append: %w", err)
		}
		b = append(b, '\n')
		if _, err := st.f.Write(b); err != nil {
			st.rollback()
			return fmt.Errorf("service: store append: %w", err)
		}
		if err := st.fsync(st.f); err != nil {
			// The line may have reached disk even though the sync failed;
			// without the rollback a restart would reload it while this
			// process never reported it.
			st.rollback()
			return fmt.Errorf("service: store sync: %w", err)
		}
		st.size += int64(len(b))
	}
	st.entries = append(st.entries, e)
	return nil
}

// rollback truncates the file back to the last acknowledged entry after a
// failed append. Best-effort: if the truncate itself fails too, the
// reload's torn-tail repair is the remaining safety net.
func (st *Store) rollback() {
	st.f.Truncate(st.size)
	st.f.Seek(st.size, io.SeekStart)
}

// IDs returns the JobIDs of all entries in append order.
func (st *Store) IDs() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, len(st.entries))
	for i, e := range st.entries {
		out[i] = e.JobID
	}
	return out
}

// Entries returns a snapshot of all entries in append order.
func (st *Store) Entries() []Entry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Entry, len(st.entries))
	copy(out, st.entries)
	return out
}

// Len returns the number of stored entries.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

// Close releases the backing file. The in-memory view stays readable.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}
