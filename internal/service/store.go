package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/report"
)

// Entry is one persisted run outcome: the submission coordinates plus the
// full result view. One entry is one line of the store file.
type Entry struct {
	JobID    string            `json:"jobId"`
	Scenario string            `json:"scenario"`
	SUT      string            `json:"sut"`
	Seed     uint64            `json:"seed"`
	Result   report.ResultView `json:"result"`
}

// Store is an append-only JSON-lines result store. Appends are flushed
// and fsynced per entry; reload tolerates a torn final line (a crash
// mid-append), so restarting the service recovers every completed run.
type Store struct {
	mu      sync.Mutex
	f       *os.File // nil for an in-memory store
	entries []Entry
}

// OpenStore opens (or creates) the store at path, reloading existing
// entries. An empty path yields a volatile in-memory store.
func OpenStore(path string) (*Store, error) {
	st := &Store{}
	if path == "" {
		return st, nil
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	// good is the byte offset of the end of the last intact entry; a
	// torn tail (crash mid-append) is truncated away below.
	var good int64
	for len(data) > 0 {
		line := data
		consumed := len(data)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line = data[:i]
			consumed = i + 1
		}
		if len(bytes.TrimSpace(line)) == 0 {
			data = data[consumed:]
			good += int64(consumed)
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			break
		}
		st.entries = append(st.entries, e)
		data = data[consumed:]
		good += int64(consumed)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: store: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: store truncate: %w", err)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: store seek: %w", err)
	}
	st.f = f
	return st, nil
}

// Append persists one entry (one JSON line, fsynced) and adds it to the
// in-memory view.
func (st *Store) Append(e Entry) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f != nil {
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("service: store append: %w", err)
		}
		b = append(b, '\n')
		if _, err := st.f.Write(b); err != nil {
			return fmt.Errorf("service: store append: %w", err)
		}
		if err := st.f.Sync(); err != nil {
			return fmt.Errorf("service: store sync: %w", err)
		}
	}
	st.entries = append(st.entries, e)
	return nil
}

// Entries returns a snapshot of all entries in append order.
func (st *Store) Entries() []Entry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Entry, len(st.entries))
	copy(out, st.entries)
	return out
}

// Len returns the number of stored entries.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

// Close releases the backing file. The in-memory view stays readable.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}
