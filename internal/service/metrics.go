package service

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/metrics"
)

// observer aggregates the service's operational metrics: how many runs
// completed and how long they took on the wall clock. Queue depth and
// jobs-by-state are derived live from the pool and job registry when the
// /metrics page renders.
type observer struct {
	mu         sync.Mutex
	runs       int64
	rejected   int64              // submissions bounced with 429 (queue full)
	retried    int64              // submissions marked X-Retry-Attempt (a client came back)
	runLatency *metrics.Histogram // wall-clock ns per completed run
}

func newObserver() *observer {
	return &observer{runLatency: metrics.NewHistogram()}
}

// observeRun records one completed (done or failed) run's wall latency.
func (o *observer) observeRun(wallNs int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.runs++
	o.runLatency.Record(wallNs)
}

// observeRejected counts one 429-rejected submission.
func (o *observer) observeRejected() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rejected++
}

// observeRetried counts one submission marked as a retry (the client set
// X-Retry-Attempt after an earlier 429).
func (o *observer) observeRetried() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.retried++
}

// retryAfterSeconds derives the 429 Retry-After value from observed run
// latency — roughly one mean run frees one worker slot — floored at the
// header's 1-second granularity.
func (o *observer) retryAfterSeconds() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	sec := int(o.runLatency.Mean() / 1e9)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// jobStates is the fixed render order for per-state gauges.
var jobStates = []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCanceled, JobTimeout}

// writeMetrics renders the Prometheus-style text exposition: queue depth,
// jobs by state, stored results, and the run-latency histogram digest.
func (o *observer) writeMetrics(w io.Writer, queueDepth int, byState map[JobState]int, stored int) {
	o.mu.Lock()
	runs := o.runs
	rejected := o.rejected
	retried := o.retried
	digest := struct {
		count         uint64
		mean          float64
		p50, p99, max int64
	}{
		count: o.runLatency.Count(),
		mean:  o.runLatency.Mean(),
		p50:   o.runLatency.Quantile(0.5),
		p99:   o.runLatency.Quantile(0.99),
		max:   o.runLatency.Max(),
	}
	o.mu.Unlock()

	fmt.Fprintln(w, "# HELP lsbench_queue_depth Pending jobs waiting for a worker.")
	fmt.Fprintln(w, "# TYPE lsbench_queue_depth gauge")
	fmt.Fprintf(w, "lsbench_queue_depth %d\n", queueDepth)

	fmt.Fprintln(w, "# HELP lsbench_jobs Jobs by lifecycle state.")
	fmt.Fprintln(w, "# TYPE lsbench_jobs gauge")
	for _, s := range jobStates {
		fmt.Fprintf(w, "lsbench_jobs{state=%q} %d\n", string(s), byState[s])
	}

	fmt.Fprintln(w, "# HELP lsbench_results_stored Entries in the persistent result store.")
	fmt.Fprintln(w, "# TYPE lsbench_results_stored gauge")
	fmt.Fprintf(w, "lsbench_results_stored %d\n", stored)

	fmt.Fprintln(w, "# HELP lsbench_runs_total Completed benchmark runs (done or failed).")
	fmt.Fprintln(w, "# TYPE lsbench_runs_total counter")
	fmt.Fprintf(w, "lsbench_runs_total %d\n", runs)

	fmt.Fprintln(w, "# HELP lsbench_jobs_rejected_total Submissions bounced with 429 (queue full).")
	fmt.Fprintln(w, "# TYPE lsbench_jobs_rejected_total counter")
	fmt.Fprintf(w, "lsbench_jobs_rejected_total %d\n", rejected)

	fmt.Fprintln(w, "# HELP lsbench_jobs_retried_total Accepted or rejected submissions marked X-Retry-Attempt.")
	fmt.Fprintln(w, "# TYPE lsbench_jobs_retried_total counter")
	fmt.Fprintf(w, "lsbench_jobs_retried_total %d\n", retried)

	fmt.Fprintln(w, "# HELP lsbench_run_latency_ns Wall-clock run latency digest.")
	fmt.Fprintln(w, "# TYPE lsbench_run_latency_ns summary")
	fmt.Fprintf(w, "lsbench_run_latency_ns{q=\"0.5\"} %d\n", digest.p50)
	fmt.Fprintf(w, "lsbench_run_latency_ns{q=\"0.99\"} %d\n", digest.p99)
	fmt.Fprintf(w, "lsbench_run_latency_ns{q=\"max\"} %d\n", digest.max)
	fmt.Fprintf(w, "lsbench_run_latency_ns_mean %g\n", digest.mean)
	fmt.Fprintf(w, "lsbench_run_latency_ns_count %d\n", digest.count)
}
