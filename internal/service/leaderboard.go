package service

import (
	"fmt"
	"sort"
)

// Row is one leaderboard line: a SUT's standing on a scenario, digested
// from its most recent stored run.
type Row struct {
	Rank int    `json:"rank"`
	SUT  string `json:"sut"`
	// Runs counts all stored runs of this SUT on the scenario; the other
	// fields come from the most recent one.
	Runs          int     `json:"runs"`
	Throughput    float64 `json:"throughput"`
	P50Ns         int64   `json:"p50Ns"`
	P99Ns         int64   `json:"p99Ns"`
	ViolationRate float64 `json:"violationRate"`
	// TrainWork is the run's total charged training work (offline +
	// online) — Lesson 3: training is never free.
	TrainWork int64 `json:"trainWork"`
	// CostToOutperform is the paper's Figure 1d metric reduced to the
	// store: the training work this SUT spent, provided it beats the
	// best training-free (traditional) SUT's throughput on the same
	// scenario; -1 when it never outperforms that baseline (or when it
	// is itself training-free).
	CostToOutperform int64 `json:"costToOutperform"`
}

// Leaderboard ranks SUTs on a scenario by metric: "throughput" (desc,
// default), "p99" (asc), or "cost" (training-cost-to-outperform asc,
// non-outperformers last). Ties break by SUT name so output is
// deterministic.
func Leaderboard(entries []Entry, scenario, metric string) ([]Row, error) {
	if metric == "" {
		metric = "throughput"
	}
	switch metric {
	case "throughput", "p99", "cost":
	default:
		return nil, fmt.Errorf("service: unknown leaderboard metric %q (have: throughput, p99, cost)", metric)
	}

	bySUT := make(map[string]*Row)
	for _, e := range entries {
		if e.Scenario != scenario {
			continue
		}
		r, ok := bySUT[e.SUT]
		if !ok {
			r = &Row{SUT: e.SUT}
			bySUT[e.SUT] = r
		}
		// Later entries overwrite: the leaderboard reflects each SUT's
		// most recent run.
		r.Runs++
		r.Throughput = e.Result.Throughput
		r.P50Ns = e.Result.Latency.P50Ns
		r.P99Ns = e.Result.Latency.P99Ns
		r.ViolationRate = e.Result.ViolationRate
		r.TrainWork = e.Result.OfflineTrainWork + e.Result.OnlineTrainWork
	}

	rows := make([]Row, 0, len(bySUT))
	for _, r := range bySUT {
		rows = append(rows, *r)
	}

	// Baseline for the cost metric: the best throughput among
	// training-free SUTs — the "tuned traditional system" of Fig 1d.
	var baseline float64
	hasBaseline := false
	for _, r := range rows {
		if r.TrainWork == 0 && r.Throughput > baseline {
			baseline = r.Throughput
			hasBaseline = true
		}
	}
	for i := range rows {
		r := &rows[i]
		r.CostToOutperform = -1
		if r.TrainWork > 0 && (!hasBaseline || r.Throughput > baseline) {
			r.CostToOutperform = r.TrainWork
		}
	}

	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		switch metric {
		case "p99":
			if a.P99Ns != b.P99Ns {
				return a.P99Ns < b.P99Ns
			}
		case "cost":
			ao, bo := a.CostToOutperform >= 0, b.CostToOutperform >= 0
			if ao != bo {
				return ao
			}
			if ao && a.CostToOutperform != b.CostToOutperform {
				return a.CostToOutperform < b.CostToOutperform
			}
			if !ao && a.Throughput != b.Throughput {
				return a.Throughput > b.Throughput
			}
		default: // throughput
			if a.Throughput != b.Throughput {
				return a.Throughput > b.Throughput
			}
		}
		return a.SUT < b.SUT
	})
	for i := range rows {
		rows[i].Rank = i + 1
	}
	return rows, nil
}
