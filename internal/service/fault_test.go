package service

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

func postWithHeaders(t *testing.T, url, body string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, data
}

// TestRetryAfterOn429: a rejected submission tells the client when to come
// back, and both sides of the conversation show up in /metrics.
func TestRetryAfterOn429(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // before cleanups: the pool drain needs the SUT unblocked
	suts := DefaultSUTs()
	suts["block"] = func() core.SUT { return &blockSUT{release: release} }
	_, ts := newTestService(t, Config{Workers: 1, QueueDepth: 1, SUTs: suts})

	blocked := fmt.Sprintf(`{"sut":"block","spec":%s}`, detSpec)
	j1 := submit(t, ts, blocked)
	waitState(t, ts, j1.ID, JobRunning) // worker occupied, queue empty
	submit(t, ts, blocked)              // fills the queue

	code, hdr, data := postWithHeaders(t, ts.URL+"/v1/jobs", blocked, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overfull queue: status %d (%s), want 429", code, data)
	}
	ra := hdr.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}

	// The retrying client marks its resubmission; still rejected (the
	// queue is still full), but both counters advance.
	code, _, _ = postWithHeaders(t, ts.URL+"/v1/jobs", blocked,
		map[string]string{"X-Retry-Attempt": "1"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("retry while full: status %d, want 429", code)
	}

	_, metrics := get(t, ts.URL+"/metrics")
	m := string(metrics)
	if !strings.Contains(m, "lsbench_jobs_rejected_total 2") {
		t.Fatalf("metrics missing rejected=2:\n%s", m)
	}
	if !strings.Contains(m, "lsbench_jobs_retried_total 1") {
		t.Fatalf("metrics missing retried=1:\n%s", m)
	}
}

// TestWorkerStall: a stall window in the service's fault plan delays job
// execution without failing it — the benchmark-service flavor of a
// stalled worker process.
func TestWorkerStall(t *testing.T) {
	plan, err := fault.ParseSpec("stall@0s-400ms", 3)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(plan, nil) // wall clock, anchored now
	_, ts := newTestService(t, Config{Workers: 1, Fault: inj})

	start := time.Now()
	j := submit(t, ts, fmt.Sprintf(`{"sut":"btree","spec":%s}`, detSpec))
	waitState(t, ts, j.ID, JobDone)
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("stalled job finished in %v, want >= ~400ms stall", elapsed)
	}
	if n := inj.Report().WorkerStalls; n != 1 {
		t.Fatalf("worker stalls = %d, want 1", n)
	}
}
