// Package service runs the benchmark as a service — the deployment model
// the paper proposes in §V-B: systems are submitted to a daemon that owns
// the workloads (including sealed hold-outs a SUT may execute exactly
// once), runs them under the deterministic virtual-clock runner, and
// keeps every result in a persistent store behind a leaderboard.
//
// The HTTP surface (stdlib only):
//
//	POST   /v1/jobs             submit a run (named scenario, hold-out, or inline spec)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        poll job status
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/result full core.Result as deterministic JSON
//	GET    /v1/results          stored results (survive restarts)
//	GET    /v1/leaderboard      rank SUTs on a scenario (?scenario=&metric=)
//	GET    /v1/scenarios        catalog scenario names
//	GET    /v1/holdouts         sealed hold-out names (contents never leave)
//	GET    /v1/suts             available systems under test
//	GET    /healthz             liveness
//	GET    /metrics             queue depth, jobs by state, run latency
//
// Runs execute on a bounded worker pool (internal/par); a full queue is
// surfaced as 429 so clients back off instead of piling up. Identical
// submissions (same scenario, same seed) produce byte-identical result
// JSON — the determinism contract of the virtual-clock runner carried
// through the wire format.
package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/report"
	"repro/internal/workload"
)

// Config wires a Service.
type Config struct {
	// SUTs maps SUT names to factories. Nil means DefaultSUTs().
	SUTs map[string]func() core.SUT
	// Scenarios is the named catalog. Factories must return a fresh
	// scenario per call (generators are stateful). Nil means
	// BuiltinScenarios().
	Scenarios map[string]func() (core.Scenario, error)
	// Holdouts is the sealed hold-out registry. Nil means an empty one.
	Holdouts *core.HoldoutRegistry
	// Runner executes the jobs. Nil means core.NewRunner().
	Runner *core.Runner
	// Workers is the number of concurrent runs (default 2).
	Workers int
	// QueueDepth bounds pending jobs; a full queue returns 429
	// (default 16).
	QueueDepth int
	// JobTimeout bounds each run's wall time; 0 means no timeout.
	// Individual jobs may override via timeoutMs.
	JobTimeout time.Duration
	// StorePath is the JSON-lines result store ("" = in-memory only).
	StorePath string
	// TraceDir, when set, enables trace-recording jobs: a submission
	// with "record": true runs with a per-job TraceSink and serves the
	// recorded binary trace from GET /v1/jobs/{id}/trace. "" disables
	// recording.
	TraceDir string
	// LogWriter receives structured request logs (nil = disabled).
	LogWriter io.Writer
	// Fault, when set, is the chaos-drill hook: workers picking up a job
	// inside one of its WorkerStall windows sleep the window out before
	// running (the queue backs up, clients see 429 + Retry-After, and the
	// service's recovery is measurable from /metrics).
	Fault *fault.Injector
}

// Service is the benchmark-as-a-service daemon state.
type Service struct {
	cfg    Config
	runner *core.Runner
	pool   *par.Pool
	store  *Store
	obs    *observer

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order for listings
	nextID int
}

// New builds a Service from cfg. Call Close to drain and release it.
func New(cfg Config) (*Service, error) {
	if cfg.SUTs == nil {
		cfg.SUTs = DefaultSUTs()
	}
	if cfg.Scenarios == nil {
		cfg.Scenarios = BuiltinScenarios()
	}
	if cfg.Holdouts == nil {
		cfg.Holdouts = core.NewHoldoutRegistry()
	}
	if cfg.Runner == nil {
		cfg.Runner = core.NewRunner()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	store, err := OpenStore(cfg.StorePath)
	if err != nil {
		return nil, err
	}
	return &Service{
		cfg:    cfg,
		runner: cfg.Runner,
		pool:   par.NewPool(cfg.Workers, cfg.QueueDepth),
		store:  store,
		obs:    newObserver(),
		jobs:   make(map[string]*Job),
	}, nil
}

// Close drains the queue (waiting for running jobs) and closes the store.
func (s *Service) Close() error {
	s.pool.Close()
	return s.store.Close()
}

// Store exposes the result store (read-only use expected).
func (s *Service) Store() *Store { return s.store }

// Handler returns the service's HTTP handler with request logging.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/results", s.handleResults)
	mux.HandleFunc("GET /v1/store/ids", s.handleStoreIDs)
	mux.HandleFunc("GET /v1/store/entries", s.handleStoreEntries)
	mux.HandleFunc("GET /v1/leaderboard", s.handleLeaderboard)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/holdouts", s.handleHoldouts)
	mux.HandleFunc("GET /v1/suts", s.handleSUTs)
	return withLogging(s.cfg.LogWriter, mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	byState := make(map[JobState]int)
	s.mu.Lock()
	for _, j := range s.jobs {
		byState[j.State]++
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.obs.writeMetrics(w, s.pool.Depth(), byState, s.store.Len())
}

// handleSubmit validates the request, resolves what to run, and enqueues
// the job. A full queue answers 429 — the service's backpressure signal.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job request: %v", err)
		return
	}
	job, err := s.newJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if req.ID != "" {
		if existing, ok := s.jobs[req.ID]; ok {
			// Idempotent re-dispatch: the job is already known (the
			// earlier submission's response was lost, or a coordinator is
			// catching up after a failover) — report its current state
			// instead of running it a second time.
			view := existing.view()
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, view)
			return
		}
		job.ID = req.ID
	} else {
		// Skip counter values taken by externally-named jobs.
		for {
			s.nextID++
			if _, taken := s.jobs["j"+strconv.Itoa(s.nextID)]; !taken {
				break
			}
		}
		job.ID = "j" + strconv.Itoa(s.nextID)
	}
	job.State = JobQueued
	job.cancel = make(chan struct{})
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()

	// Clients resubmitting after a 429 mark the attempt so the
	// rejected-vs-retried balance is observable in /metrics.
	if r.Header.Get("X-Retry-Attempt") != "" {
		s.obs.observeRetried()
	}

	if !s.pool.TrySubmit(func() { s.execute(job) }) {
		s.mu.Lock()
		job.State = JobFailed
		job.Err = "queue full"
		s.mu.Unlock()
		s.obs.observeRejected()
		// Retry-After derived from observed run latency: one mean run
		// frees one worker slot (floor 1s, the header's granularity).
		w.Header().Set("Retry-After", strconv.Itoa(s.obs.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "job queue full, retry later")
		return
	}
	s.mu.Lock()
	view := job.view()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, view)
}

// newJob validates a request into a Job (not yet registered or queued).
func (s *Service) newJob(req JobRequest) (*Job, error) {
	if len(req.ID) > 128 || strings.ContainsAny(req.ID, "/ \t\r\n") {
		return nil, fmt.Errorf("service: job id %q invalid (max 128 chars, no slashes or whitespace)", req.ID)
	}
	if req.SUT == "" {
		return nil, fmt.Errorf("service: job needs a sut (see /v1/suts)")
	}
	if _, ok := s.cfg.SUTs[req.SUT]; !ok {
		return nil, fmt.Errorf("service: unknown sut %q (see /v1/suts)", req.SUT)
	}
	selectors := 0
	for _, set := range []bool{req.Scenario != "", req.Holdout != "", len(req.Spec) > 0} {
		if set {
			selectors++
		}
	}
	if selectors != 1 {
		return nil, fmt.Errorf("service: job needs exactly one of scenario, holdout, or spec")
	}
	if req.Seed != nil && len(req.Spec) == 0 {
		return nil, fmt.Errorf("service: seed override is only valid with an inline spec")
	}
	if req.TimeoutMs < 0 {
		return nil, fmt.Errorf("service: negative timeoutMs")
	}
	if req.Record {
		if s.cfg.TraceDir == "" {
			return nil, fmt.Errorf("service: recording disabled (no trace directory configured)")
		}
		if req.Holdout != "" {
			return nil, fmt.Errorf("service: hold-out workloads are sealed and cannot be recorded")
		}
	}

	job := &Job{Req: req}
	switch {
	case req.Scenario != "":
		if _, ok := s.cfg.Scenarios[req.Scenario]; !ok {
			return nil, fmt.Errorf("service: unknown scenario %q (see /v1/scenarios)", req.Scenario)
		}
		job.Scenario = req.Scenario
	case req.Holdout != "":
		found := false
		for _, n := range s.cfg.Holdouts.Names() {
			if n == req.Holdout {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("service: unknown hold-out %q (see /v1/holdouts)", req.Holdout)
		}
		job.Scenario = req.Holdout
	default:
		var doc config.Scenario
		if err := json.Unmarshal(req.Spec, &doc); err != nil {
			return nil, fmt.Errorf("service: invalid spec: %w", err)
		}
		if req.Seed != nil {
			doc.Seed = *req.Seed
		}
		sc, err := doc.Build()
		if err != nil {
			return nil, fmt.Errorf("service: invalid spec: %w", err)
		}
		if sc.Name == "" {
			return nil, fmt.Errorf("service: spec needs a name (it keys the leaderboard)")
		}
		job.spec = &sc
		job.Scenario = sc.Name
		job.Seed = sc.Seed
	}
	return job, nil
}

// execute is the queue worker body: run the job under its deadline,
// encode the result deterministically, and persist it.
func (s *Service) execute(job *Job) {
	s.mu.Lock()
	if job.State != JobQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	job.State = JobRunning
	timeout := s.cfg.JobTimeout
	if job.Req.TimeoutMs > 0 {
		timeout = time.Duration(job.Req.TimeoutMs) * time.Millisecond
	}
	s.mu.Unlock()

	// Chaos drill: a worker inside a stall window sleeps it out before
	// running, so the queue visibly backs up and drains.
	if s.cfg.Fault != nil {
		if d := s.cfg.Fault.StallFor(); d > 0 {
			time.Sleep(d)
		}
	}

	type outcome struct {
		res *core.Result
		err error
	}
	ch := make(chan outcome, 1)
	start := time.Now()
	go func() {
		res, err := s.run(job)
		ch <- outcome{res, err}
	}()

	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}

	select {
	case out := <-ch:
		s.finish(job, out.res, out.err, time.Since(start))
	case <-deadline:
		// The run goroutine is abandoned; it discards its result when
		// it eventually finishes (the job is no longer running).
		s.mu.Lock()
		job.State = JobTimeout
		job.Err = fmt.Sprintf("exceeded %v deadline", timeout)
		s.mu.Unlock()
	case <-job.cancel:
		s.mu.Lock()
		job.State = JobCanceled
		job.Err = "canceled"
		s.mu.Unlock()
	}
}

// run resolves the job's scenario and executes it.
func (s *Service) run(job *Job) (*core.Result, error) {
	sutFactory := s.cfg.SUTs[job.Req.SUT]
	if job.Req.Holdout != "" {
		// RunOnce consumes the (hold-out, SUT) attempt — spent even if
		// the run later times out, exactly like a sealed submission.
		// (Hold-outs are never recorded; newJob refuses the combination.)
		return s.cfg.Holdouts.RunOnce(s.runner, job.Req.Holdout, sutFactory)
	}
	var sc core.Scenario
	if job.spec != nil {
		sc = *job.spec
	} else {
		built, err := s.cfg.Scenarios[job.Req.Scenario]()
		if err != nil {
			return nil, fmt.Errorf("service: building scenario %q: %w", job.Req.Scenario, err)
		}
		sc = built
	}
	if !job.Req.Record {
		return s.runner.Run(sc, sutFactory())
	}

	// Recording run: a shallow per-job copy of the shared runner carries
	// the job's own TraceSink (the runner's other fields are read-only
	// configuration), so concurrent workers never share a writer.
	path := filepath.Join(s.cfg.TraceDir, job.ID+".lstrace")
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("service: creating trace file: %w", err)
	}
	tw := workload.NewTraceWriter(f, sc.Name, sc.Seed)
	runner := *s.runner
	runner.TraceSink = tw
	res, err := runner.Run(sc, sutFactory())
	cErr := tw.Close()
	if fErr := f.Close(); cErr == nil {
		cErr = fErr
	}
	if err == nil {
		err = cErr
	}
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	s.mu.Lock()
	job.tracePath = path
	s.mu.Unlock()
	return res, nil
}

// finish records a completed run: encodes the deterministic result JSON,
// appends to the store, and flips the job state — unless the job was
// canceled or timed out while the run was in flight.
func (s *Service) finish(job *Job, res *core.Result, err error, wall time.Duration) {
	s.obs.observeRun(wall.Nanoseconds())
	if err != nil {
		s.mu.Lock()
		if job.State == JobRunning {
			job.State = JobFailed
			job.Err = err.Error()
		}
		s.mu.Unlock()
		return
	}
	data, mErr := report.MarshalResult(res)
	if mErr != nil {
		s.mu.Lock()
		if job.State == JobRunning {
			job.State = JobFailed
			job.Err = mErr.Error()
		}
		s.mu.Unlock()
		return
	}

	s.mu.Lock()
	if job.State != JobRunning {
		s.mu.Unlock()
		return
	}
	job.State = JobDone
	job.ResultJSON = data
	entry := Entry{
		JobID:    job.ID,
		Scenario: job.Scenario,
		SUT:      res.SUT,
		Seed:     job.Seed,
		Result:   report.NewResultView(res),
	}
	s.mu.Unlock()

	if sErr := s.store.Append(entry); sErr != nil {
		s.mu.Lock()
		job.Err = "result not persisted: " + sErr.Error()
		s.mu.Unlock()
	}
}

func (s *Service) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Service) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var view JobView
	if ok {
		view = job.view()
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	switch {
	case job.State == JobQueued:
		job.State = JobCanceled
		job.Err = "canceled before start"
	case job.State == JobRunning && !job.canceled:
		job.canceled = true
		close(job.cancel) // execute's select flips the state
	case job.State.Terminal():
		view := job.view()
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, view)
		return
	}
	view := job.view()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleJobResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var state JobState
	var data []byte
	if ok {
		state = job.State
		data = job.ResultJSON
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if state != JobDone {
		writeError(w, http.StatusConflict, "job %s is %s, no result", r.PathValue("id"), state)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleJobTrace serves a recorded job's binary trace. The trace is only
// available once the job is done (the writer is closed when the run
// finishes, so a served file is always complete and crc-framed).
func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var state JobState
	var path string
	var recorded bool
	if ok {
		state = job.State
		path = job.tracePath
		recorded = job.Req.Record
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !recorded {
		writeError(w, http.StatusConflict, "job %s did not record a trace", r.PathValue("id"))
		return
	}
	if state != JobDone || path == "" {
		writeError(w, http.StatusConflict, "job %s is %s, no trace", r.PathValue("id"), state)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, path)
}

func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	scenario := r.URL.Query().Get("scenario")
	sut := r.URL.Query().Get("sut")
	var out []Entry
	for _, e := range s.store.Entries() {
		if scenario != "" && e.Scenario != scenario {
			continue
		}
		if sut != "" && e.SUT != sut {
			continue
		}
		out = append(out, e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

// handleStoreIDs lists the JobIDs of every stored entry — the cheap half
// of the cluster's anti-entropy protocol: a coordinator diffs this set
// against its replica and pulls only the missing entries.
func (s *Service) handleStoreIDs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ids": s.store.IDs()})
}

// handleStoreEntries returns stored entries by JobID (?ids=a,b,c;
// unknown IDs are skipped, no IDs means everything) — the pull half of
// anti-entropy catch-up.
func (s *Service) handleStoreEntries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("ids")
	entries := s.store.Entries()
	out := make([]Entry, 0, len(entries))
	if q == "" {
		out = entries
	} else {
		want := make(map[string]bool)
		for _, id := range strings.Split(q, ",") {
			want[id] = true
		}
		for _, e := range entries {
			if want[e.JobID] {
				out = append(out, e)
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"entries": out})
}

func (s *Service) handleLeaderboard(w http.ResponseWriter, r *http.Request) {
	scenario := r.URL.Query().Get("scenario")
	if scenario == "" {
		writeError(w, http.StatusBadRequest, "leaderboard needs ?scenario=")
		return
	}
	rows, err := Leaderboard(s.store.Entries(), scenario, r.URL.Query().Get("metric"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenario": scenario, "rows": rows})
}

func (s *Service) handleScenarios(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.cfg.Scenarios))
	for n := range s.cfg.Scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": names})
}

func (s *Service) handleHoldouts(w http.ResponseWriter, r *http.Request) {
	names := s.cfg.Holdouts.Names()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"holdouts": names})
}

func (s *Service) handleSUTs(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.cfg.SUTs))
	for n := range s.cfg.SUTs {
		names = append(names, n)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"suts": names})
}

// DefaultSUTs is the standard SUT catalog — the same set cmd/lsbench and
// cmd/lsbenchd expose.
func DefaultSUTs() map[string]func() core.SUT {
	return map[string]func() core.SUT{
		"btree":   core.NewBTreeSUT,
		"hash":    core.NewHashSUT,
		"rmi":     core.NewRMISUT,
		"alex":    core.NewALEXSUT,
		"kvstore": core.NewKVSUTDefault,
	}
}

// builtinScenarioDocs are the catalog scenarios shipped with the service,
// as config documents so every build yields fresh (stateful) generators.
var builtinScenarioDocs = map[string]config.Scenario{
	"smoke": {
		Name:        "smoke",
		Seed:        1,
		InitialData: config.GenSpec{Kind: "uniform"},
		InitialSize: 20_000,
		TrainBefore: true,
		IntervalNs:  1_000_000,
		Phases: []config.Phase{{
			Name: "steady",
			Ops:  30_000,
			Mix:  config.MixSpec{Get: 0.95, Put: 0.05},
			Access: config.DriftSpec{Kind: "static",
				Gen: &config.GenSpec{Kind: "zipf", Theta: 1.1, Universe: 1 << 20}},
		}},
	},
	"drift-shift": {
		Name:        "drift-shift",
		Seed:        7,
		InitialData: config.GenSpec{Kind: "zipf", Theta: 1.1, Universe: 1 << 21},
		InitialSize: 50_000,
		TrainBefore: true,
		IntervalNs:  1_000_000,
		Phases: []config.Phase{
			{
				Name: "steady",
				Ops:  40_000,
				Mix:  config.MixSpec{Get: 0.9, Put: 0.1},
				Access: config.DriftSpec{Kind: "static",
					Gen: &config.GenSpec{Kind: "zipf", Theta: 1.1, Universe: 1 << 21}},
			},
			{
				Name:          "shift",
				Ops:           40_000,
				RetrainBefore: true,
				Mix:           config.MixSpec{Get: 0.5, Put: 0.5},
				Access: config.DriftSpec{Kind: "static",
					Gen: &config.GenSpec{Kind: "clustered", Clusters: 25}},
				InsertKeys: &config.DriftSpec{Kind: "static",
					Gen: &config.GenSpec{Kind: "clustered", Clusters: 25}},
			},
		},
	},
}

// BuiltinScenarios returns the shipped scenario catalog.
func BuiltinScenarios() map[string]func() (core.Scenario, error) {
	out := make(map[string]func() (core.Scenario, error), len(builtinScenarioDocs))
	for name, doc := range builtinScenarioDocs {
		doc := doc
		out[name] = func() (core.Scenario, error) { return doc.Build() }
	}
	return out
}
