// Package sqlmini implements a miniature in-memory relational engine —
// tables of uint64 columns, filtered scans, hash and nested-loop joins,
// and explicit plan trees — as the substrate for the benchmark's learned
// query-optimization experiments. The engine counts the rows every
// operator touches, so plan quality is measurable deterministically and
// identically under the real and virtual clocks.
package sqlmini

import (
	"fmt"
	"sort"
)

// Table is a named collection of rows over named uint64 columns.
type Table struct {
	Name    string
	Columns []string
	colIdx  map[string]int
	Rows    [][]uint64
}

// NewTable creates an empty table with the given columns.
func NewTable(name string, columns ...string) *Table {
	if len(columns) == 0 {
		panic("sqlmini: table needs at least one column")
	}
	idx := make(map[string]int, len(columns))
	for i, c := range columns {
		if _, dup := idx[c]; dup {
			panic(fmt.Sprintf("sqlmini: duplicate column %q", c))
		}
		idx[c] = i
	}
	return &Table{Name: name, Columns: columns, colIdx: idx}
}

// Col returns the position of a column, panicking on unknown names (a
// query construction bug, not a runtime condition).
func (t *Table) Col(name string) int {
	i, ok := t.colIdx[name]
	if !ok {
		panic(fmt.Sprintf("sqlmini: table %s has no column %q", t.Name, name))
	}
	return i
}

// HasCol reports whether the table has the column.
func (t *Table) HasCol(name string) bool {
	_, ok := t.colIdx[name]
	return ok
}

// Append adds a row; the row length must match the column count.
func (t *Table) Append(row ...uint64) {
	if len(row) != len(t.Columns) {
		panic("sqlmini: row width mismatch")
	}
	t.Rows = append(t.Rows, row)
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.Rows) }

// ReplaceRows swaps the table contents (used by drift scenarios that
// evolve the database during a run).
func (t *Table) ReplaceRows(rows [][]uint64) { t.Rows = rows }

// Op is a predicate comparison operator.
type Op int

// Predicate operators.
const (
	Eq      Op = iota // column == Value
	Lt                // column < Value
	Ge                // column >= Value
	Between           // Value <= column <= Hi
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Lt:
		return "<"
	case Ge:
		return ">="
	case Between:
		return "between"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is a single-column filter.
type Predicate struct {
	Column string
	Op     Op
	Value  uint64
	Hi     uint64 // upper bound for Between
}

// Matches evaluates the predicate on a value.
func (p Predicate) Matches(v uint64) bool {
	switch p.Op {
	case Eq:
		return v == p.Value
	case Lt:
		return v < p.Value
	case Ge:
		return v >= p.Value
	case Between:
		return v >= p.Value && v <= p.Hi
	default:
		return false
	}
}

// String renders the predicate for plan trees and reports.
func (p Predicate) String() string {
	if p.Op == Between {
		return fmt.Sprintf("%s between %d and %d", p.Column, p.Value, p.Hi)
	}
	return fmt.Sprintf("%s %s %d", p.Column, p.Op, p.Value)
}

// TrueCardinality counts rows of t matching all predicates — the oracle
// the exact estimator and the tests use.
func TrueCardinality(t *Table, preds []Predicate) int {
	n := 0
	idxs := make([]int, len(preds))
	for i, p := range preds {
		idxs[i] = t.Col(p.Column)
	}
	for _, row := range t.Rows {
		ok := true
		for i, p := range preds {
			if !p.Matches(row[idxs[i]]) {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

// ColumnValues returns a sorted copy of one column's values (estimator
// training input).
func (t *Table) ColumnValues(col string) []uint64 {
	i := t.Col(col)
	out := make([]uint64, len(t.Rows))
	for r, row := range t.Rows {
		out[r] = row[i]
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// DistinctCount returns the number of distinct values in a column.
func (t *Table) DistinctCount(col string) int {
	vals := t.ColumnValues(col)
	if len(vals) == 0 {
		return 0
	}
	n := 1
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[i-1] {
			n++
		}
	}
	return n
}
