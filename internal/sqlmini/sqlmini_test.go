package sqlmini

import (
	"strings"
	"testing"

	"repro/internal/similarity"
)

func usersOrders() (*Table, *Table) {
	users := NewTable("users", "id", "age")
	for i := uint64(0); i < 100; i++ {
		users.Append(i, 20+i%50)
	}
	orders := NewTable("orders", "oid", "uid", "amount")
	for i := uint64(0); i < 300; i++ {
		orders.Append(i, i%100, i*10)
	}
	return users, orders
}

func TestTableBasics(t *testing.T) {
	u := NewTable("u", "a", "b")
	u.Append(1, 2)
	if u.Len() != 1 || u.Col("b") != 1 || !u.HasCol("a") || u.HasCol("z") {
		t.Fatal("table basics")
	}
}

func TestTablePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no-cols":   func() { NewTable("x") },
		"dup-cols":  func() { NewTable("x", "a", "a") },
		"width":     func() { NewTable("x", "a").Append(1, 2) },
		"badcolumn": func() { NewTable("x", "a").Col("b") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		p    Predicate
		v    uint64
		want bool
	}{
		{Predicate{Op: Eq, Value: 5}, 5, true},
		{Predicate{Op: Eq, Value: 5}, 6, false},
		{Predicate{Op: Lt, Value: 5}, 4, true},
		{Predicate{Op: Lt, Value: 5}, 5, false},
		{Predicate{Op: Ge, Value: 5}, 5, true},
		{Predicate{Op: Ge, Value: 5}, 4, false},
		{Predicate{Op: Between, Value: 3, Hi: 7}, 3, true},
		{Predicate{Op: Between, Value: 3, Hi: 7}, 7, true},
		{Predicate{Op: Between, Value: 3, Hi: 7}, 8, false},
	}
	for _, c := range cases {
		if c.p.Matches(c.v) != c.want {
			t.Fatalf("%v.Matches(%d) != %v", c.p, c.v, c.want)
		}
	}
}

func TestTrueCardinality(t *testing.T) {
	users, _ := usersOrders()
	n := TrueCardinality(users, []Predicate{{Column: "age", Op: Lt, Value: 30}})
	// ages are 20 + i%50 for i in 0..99: ages 20..29 occur for i%50 in
	// 0..9, i.e. 20 rows.
	if n != 20 {
		t.Fatalf("cardinality = %d", n)
	}
	if TrueCardinality(users, nil) != 100 {
		t.Fatal("no-predicate cardinality")
	}
}

func TestScanExecution(t *testing.T) {
	users, _ := usersOrders()
	rows, st, err := Execute(NewScan(users, Predicate{Column: "age", Op: Ge, Value: 60}))
	if err != nil {
		t.Fatal(err)
	}
	want := TrueCardinality(users, []Predicate{{Column: "age", Op: Ge, Value: 60}})
	if len(rows) != want {
		t.Fatalf("scan returned %d rows, want %d", len(rows), want)
	}
	if st.RowsTouched != users.Len() {
		t.Fatalf("scan touched %d rows", st.RowsTouched)
	}
	if st.RowsOut != len(rows) {
		t.Fatal("RowsOut mismatch")
	}
}

func TestScanUnknownColumnErrors(t *testing.T) {
	users, _ := usersOrders()
	if _, _, err := Execute(NewScan(users, Predicate{Column: "nope", Op: Eq})); err == nil {
		t.Fatal("no error for unknown predicate column")
	}
}

func TestHashJoinMatchesNLJoin(t *testing.T) {
	users, orders := usersOrders()
	hj := NewJoin(HashJoin, NewScan(users), NewScan(orders), "users.id", "orders.uid")
	nl := NewJoin(NestedLoopJoin, NewScan(users), NewScan(orders), "users.id", "orders.uid")
	hrows, hst, err := Execute(hj)
	if err != nil {
		t.Fatal(err)
	}
	nrows, nst, err := Execute(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(hrows) != len(nrows) || len(hrows) != 300 {
		t.Fatalf("join sizes: hash=%d nl=%d want 300", len(hrows), len(nrows))
	}
	if hst.RowsTouched >= nst.RowsTouched {
		t.Fatalf("hash join (%d) should touch fewer rows than NL (%d)",
			hst.RowsTouched, nst.RowsTouched)
	}
	// Row sets must be equal (order may differ).
	key := func(r []uint64) string {
		var sb strings.Builder
		for _, v := range r {
			sb.WriteString(string(rune(v % 1000)))
			sb.WriteByte('|')
		}
		return sb.String()
	}
	hset := map[string]int{}
	for _, r := range hrows {
		hset[key(r)]++
	}
	for _, r := range nrows {
		hset[key(r)]--
	}
	for _, c := range hset {
		if c != 0 {
			t.Fatal("join result sets differ")
		}
	}
}

func TestJoinOutputWidth(t *testing.T) {
	users, orders := usersOrders()
	p := NewJoin(HashJoin, NewScan(users), NewScan(orders), "id", "uid")
	rows, _, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0]) != 5 { // 2 user cols + 3 order cols
		t.Fatalf("joined row width = %d", len(rows[0]))
	}
	cols := p.OutputColumns()
	if len(cols) != 5 || cols[0] != "users.id" || cols[4] != "orders.amount" {
		t.Fatalf("output columns = %v", cols)
	}
}

func TestBareColumnResolution(t *testing.T) {
	users, orders := usersOrders()
	// Bare names resolve via suffix match.
	p := NewJoin(HashJoin, NewScan(users), NewScan(orders), "id", "uid")
	if _, _, err := Execute(p); err != nil {
		t.Fatal(err)
	}
	bad := NewJoin(HashJoin, NewScan(users), NewScan(orders), "id", "missing")
	if _, _, err := Execute(bad); err == nil {
		t.Fatal("no error for unresolvable join column")
	}
}

func TestThreeWayJoin(t *testing.T) {
	users, orders := usersOrders()
	items := NewTable("items", "oid2", "sku")
	for i := uint64(0); i < 300; i++ {
		items.Append(i, i%7)
	}
	p := NewJoin(HashJoin,
		NewJoin(HashJoin, NewScan(users), NewScan(orders), "users.id", "orders.uid"),
		NewScan(items),
		"orders.oid", "items.oid2")
	rows, _, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 300 {
		t.Fatalf("three-way join = %d rows", len(rows))
	}
	if len(rows[0]) != 7 {
		t.Fatalf("row width = %d", len(rows[0]))
	}
}

func TestFilteredJoinCardinality(t *testing.T) {
	users, orders := usersOrders()
	p := NewJoin(HashJoin,
		NewScan(users, Predicate{Column: "id", Op: Lt, Value: 10}),
		NewScan(orders),
		"users.id", "orders.uid")
	rows, _, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	// Each of user ids 0..9 matches 3 orders.
	if len(rows) != 30 {
		t.Fatalf("filtered join = %d rows", len(rows))
	}
}

func TestPlanString(t *testing.T) {
	users, orders := usersOrders()
	p := NewJoin(HashJoin,
		NewScan(users, Predicate{Column: "age", Op: Ge, Value: 30}),
		NewScan(orders), "id", "uid")
	s := p.String()
	if !strings.Contains(s, "hashjoin") || !strings.Contains(s, "scan(users[age >= 30])") {
		t.Fatalf("plan string = %q", s)
	}
}

func TestPlanTreeTemplateStability(t *testing.T) {
	users, orders := usersOrders()
	// Two instances of the same template with different literals must
	// produce identical trees (the paper's workload similarity works on
	// query shapes).
	p1 := NewJoin(HashJoin, NewScan(users, Predicate{Column: "age", Op: Ge, Value: 30}), NewScan(orders), "id", "uid")
	p2 := NewJoin(HashJoin, NewScan(users, Predicate{Column: "age", Op: Ge, Value: 55}), NewScan(orders), "id", "uid")
	if p1.Tree().Canon() != p2.Tree().Canon() {
		t.Fatal("literal values leaked into plan tree")
	}
	// Different shape differs.
	p3 := NewJoin(NestedLoopJoin, NewScan(users), NewScan(orders), "id", "uid")
	if p1.Tree().Canon() == p3.Tree().Canon() {
		t.Fatal("different plans share a tree")
	}
	if similarity.WorkloadJaccard(
		[]*similarity.Tree{p1.Tree()},
		[]*similarity.Tree{p2.Tree()}) != 1 {
		t.Fatal("same-template workloads must have similarity 1")
	}
}

func TestTables(t *testing.T) {
	users, orders := usersOrders()
	p := NewJoin(HashJoin, NewScan(users), NewScan(orders), "id", "uid")
	ts := p.Tables()
	if len(ts) != 2 || ts[0].Name != "users" || ts[1].Name != "orders" {
		t.Fatalf("tables = %v", ts)
	}
}

func TestCost(t *testing.T) {
	users, orders := usersOrders()
	c, err := Cost(NewJoin(HashJoin, NewScan(users), NewScan(orders), "id", "uid"))
	if err != nil || c <= 0 {
		t.Fatalf("cost = %d, %v", c, err)
	}
}

func TestColumnValuesAndDistinct(t *testing.T) {
	users, _ := usersOrders()
	vals := users.ColumnValues("age")
	if len(vals) != 100 {
		t.Fatal("column length")
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatal("unsorted column values")
		}
	}
	if users.DistinctCount("age") != 50 {
		t.Fatalf("distinct ages = %d", users.DistinctCount("age"))
	}
	empty := NewTable("e", "x")
	if empty.DistinctCount("x") != 0 {
		t.Fatal("empty distinct")
	}
}
