package sqlmini

import "fmt"

// ExecStats counts the work an execution performed. RowsTouched is the
// engine's deterministic cost unit: every row an operator reads, probes,
// or emits increments it, so two plans for the same query are comparable
// without wall-clock noise.
type ExecStats struct {
	RowsTouched int
	RowsOut     int
	HashBuilds  int
}

// Execute runs the plan and returns the result rows (as flat tuples over
// OutputColumns order) plus execution statistics. It returns an error for
// malformed plans (unresolvable join columns).
func Execute(p *Plan) ([][]uint64, ExecStats, error) {
	var st ExecStats
	rows, err := execNode(p, &st)
	if err != nil {
		return nil, st, err
	}
	st.RowsOut = len(rows)
	return rows, st, nil
}

func execNode(p *Plan, st *ExecStats) ([][]uint64, error) {
	if p.IsLeaf() {
		return execScan(p, st)
	}
	left, err := execNode(p.Left, st)
	if err != nil {
		return nil, err
	}
	right, err := execNode(p.Right, st)
	if err != nil {
		return nil, err
	}
	li, err := resolve(p.Left.OutputColumns(), p.LeftCol)
	if err != nil {
		return nil, err
	}
	ri, err := resolve(p.Right.OutputColumns(), p.RightCol)
	if err != nil {
		return nil, err
	}
	switch p.Algo {
	case HashJoin:
		return execHashJoin(left, right, li, ri, st), nil
	case NestedLoopJoin:
		return execNLJoin(left, right, li, ri, st), nil
	default:
		return nil, fmt.Errorf("sqlmini: unknown join algorithm %d", p.Algo)
	}
}

func execScan(p *Plan, st *ExecStats) ([][]uint64, error) {
	idxs := make([]int, len(p.Preds))
	for i, pr := range p.Preds {
		if !p.Table.HasCol(pr.Column) {
			return nil, fmt.Errorf("sqlmini: predicate column %q not in table %s", pr.Column, p.Table.Name)
		}
		idxs[i] = p.Table.Col(pr.Column)
	}
	var out [][]uint64
	for _, row := range p.Table.Rows {
		st.RowsTouched++
		ok := true
		for i, pr := range p.Preds {
			if !pr.Matches(row[idxs[i]]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out, nil
}

// execHashJoin builds a hash table on the smaller input and probes with
// the larger — cost ~ |build| + |probe| + |output|.
func execHashJoin(left, right [][]uint64, li, ri int, st *ExecStats) [][]uint64 {
	buildRows, probeRows := left, right
	bi, pi := li, ri
	buildIsLeft := true
	if len(right) < len(left) {
		buildRows, probeRows = right, left
		bi, pi = ri, li
		buildIsLeft = false
	}
	st.HashBuilds++
	ht := make(map[uint64][]int, len(buildRows))
	for i, row := range buildRows {
		st.RowsTouched++
		ht[row[bi]] = append(ht[row[bi]], i)
	}
	var out [][]uint64
	for _, prow := range probeRows {
		st.RowsTouched++
		for _, bidx := range ht[prow[pi]] {
			st.RowsTouched++
			brow := buildRows[bidx]
			var l, r []uint64
			if buildIsLeft {
				l, r = brow, prow
			} else {
				l, r = prow, brow
			}
			joined := make([]uint64, 0, len(l)+len(r))
			joined = append(joined, l...)
			joined = append(joined, r...)
			out = append(out, joined)
		}
	}
	return out
}

// execNLJoin is the quadratic baseline — cost ~ |left| * |right|. It only
// wins for tiny inputs (no hash-build overhead), which gives the learned
// steering something real to discover.
func execNLJoin(left, right [][]uint64, li, ri int, st *ExecStats) [][]uint64 {
	var out [][]uint64
	for _, l := range left {
		for _, r := range right {
			st.RowsTouched++
			if l[li] == r[ri] {
				joined := make([]uint64, 0, len(l)+len(r))
				joined = append(joined, l...)
				joined = append(joined, r...)
				out = append(out, joined)
			}
		}
	}
	return out
}

// Cost executes the plan purely for its cost (rows touched), discarding
// rows. It is the measurement primitive of the optimizer experiments.
func Cost(p *Plan) (int, error) {
	_, st, err := Execute(p)
	return st.RowsTouched, err
}
