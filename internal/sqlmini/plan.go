package sqlmini

import (
	"fmt"
	"strings"

	"repro/internal/similarity"
)

// JoinAlgo selects the physical join implementation.
type JoinAlgo int

// Physical join algorithms.
const (
	HashJoin JoinAlgo = iota
	NestedLoopJoin
)

// String names the algorithm.
func (a JoinAlgo) String() string {
	if a == HashJoin {
		return "hashjoin"
	}
	return "nljoin"
}

// Plan is a physical query plan node: either a filtered table scan (leaf)
// or a join of two sub-plans on one column from each side.
type Plan struct {
	// Leaf fields.
	Table *Table
	Preds []Predicate

	// Join fields (Table == nil).
	Algo     JoinAlgo
	Left     *Plan
	Right    *Plan
	LeftCol  string // column name resolved in the left subtree's output
	RightCol string
}

// IsLeaf reports whether the node is a scan.
func (p *Plan) IsLeaf() bool { return p.Table != nil }

// NewScan returns a scan plan over t with optional predicates.
func NewScan(t *Table, preds ...Predicate) *Plan {
	return &Plan{Table: t, Preds: preds}
}

// NewJoin returns a join plan of two sub-plans on leftCol = rightCol.
func NewJoin(algo JoinAlgo, left, right *Plan, leftCol, rightCol string) *Plan {
	return &Plan{Algo: algo, Left: left, Right: right, LeftCol: leftCol, RightCol: rightCol}
}

// OutputColumns lists the column names produced by the plan, qualified as
// table.column to stay unique across joins.
func (p *Plan) OutputColumns() []string {
	if p.IsLeaf() {
		out := make([]string, len(p.Table.Columns))
		for i, c := range p.Table.Columns {
			out[i] = p.Table.Name + "." + c
		}
		return out
	}
	return append(p.Left.OutputColumns(), p.Right.OutputColumns()...)
}

// resolve finds the output position of a column referenced either
// qualified (table.column) or bare (first match wins).
func resolve(cols []string, name string) (int, error) {
	for i, c := range cols {
		if c == name {
			return i, nil
		}
	}
	if !strings.Contains(name, ".") {
		suffix := "." + name
		for i, c := range cols {
			if strings.HasSuffix(c, suffix) {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("sqlmini: column %q not in output %v", name, cols)
}

// String renders the plan in one line, e.g.
// hashjoin(scan(orders),scan(users[id >= 5])).
func (p *Plan) String() string {
	var sb strings.Builder
	p.describe(&sb)
	return sb.String()
}

func (p *Plan) describe(sb *strings.Builder) {
	if p.IsLeaf() {
		sb.WriteString("scan(")
		sb.WriteString(p.Table.Name)
		if len(p.Preds) > 0 {
			sb.WriteByte('[')
			for i, pr := range p.Preds {
				if i > 0 {
					sb.WriteString(" and ")
				}
				sb.WriteString(pr.String())
			}
			sb.WriteByte(']')
		}
		sb.WriteByte(')')
		return
	}
	sb.WriteString(p.Algo.String())
	sb.WriteByte('(')
	p.Left.describe(sb)
	sb.WriteByte(',')
	p.Right.describe(sb)
	sb.WriteByte(')')
}

// Tree converts the plan into the similarity package's generic tree so
// workloads can be compared by the paper's plan-subtree Jaccard metric.
// Labels carry the operator and, for scans, the table and predicate
// *shape* (columns and operators, not literals), so two instances of the
// same query template map to the same subtrees.
func (p *Plan) Tree() *similarity.Tree {
	if p.IsLeaf() {
		label := "scan:" + p.Table.Name
		for _, pr := range p.Preds {
			label += ":" + pr.Column + pr.Op.String()
		}
		return similarity.NewTree(label)
	}
	label := fmt.Sprintf("%s:%s=%s", p.Algo, p.LeftCol, p.RightCol)
	return similarity.NewTree(label, p.Left.Tree(), p.Right.Tree())
}

// Tables returns the distinct base tables referenced by the plan.
func (p *Plan) Tables() []*Table {
	var out []*Table
	var walk func(*Plan)
	walk = func(n *Plan) {
		if n.IsLeaf() {
			out = append(out, n.Table)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(p)
	return out
}
