// Quickstart: benchmark one learned index against one traditional index
// on a single drifting workload, printing the headline metrics the paper
// proposes — not just average throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/report"

	lsbench "repro"
)

func main() {
	// A workload whose key-access distribution drifts from uniform to
	// clustered during the run, with a day/night arrival pattern.
	scenario := lsbench.Scenario{
		Name:        "quickstart",
		Seed:        42,
		InitialData: lsbench.NewUniform(1, 0, lsbench.KeyDomain),
		InitialSize: 100_000,
		TrainBefore: true, // charge the learned index's training up front
		IntervalNs:  1_000_000,
		Phases: []lsbench.Phase{{
			Name: "drifting",
			Ops:  200_000,
			Workload: lsbench.WorkloadSpec{
				Mix: lsbench.Mix{GetFrac: 0.7, PutFrac: 0.3},
				Access: lsbench.NewBlend(2,
					lsbench.NewUniform(3, 0, lsbench.KeyDomain),
					lsbench.NewClustered(4, 25, float64(lsbench.KeyDomain)/1e6)),
			},
			Arrival: lsbench.NewDiurnal(5, 700_000, 0.5, 2),
		}},
	}

	runner := lsbench.NewRunner()
	var labels []string
	var curves []*metrics.CumCurve
	for _, factory := range []func() lsbench.SUT{lsbench.NewRMISUT, lsbench.NewBTreeSUT} {
		res, err := runner.Run(scenario, factory())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s:\n", res.SUT)
		fmt.Printf("  throughput     %.0f ops/s (average — do not stop here!)\n", res.Throughput())
		sum := res.Timeline.ThroughputSummary()
		fmt.Printf("  per-interval   median %.0f, IQR [%.0f, %.0f], %d outlier intervals\n",
			sum.Median, sum.P25, sum.P75, sum.OutlierCount)
		fmt.Printf("  latency        p50 %dns, p99 %dns, max %dns\n",
			res.Latency.Quantile(0.5), res.Latency.Quantile(0.99), res.Latency.Max())
		fmt.Printf("  SLA            %dns calibrated, %.2f%% violations\n",
			res.SLANs, res.Bands.ViolationRate()*100)
		fmt.Printf("  training       offline %d work units, online %d\n",
			res.OfflineTrainWork, res.OnlineTrainWork)
		fmt.Printf("  area-vs-ideal  %.3f\n\n", res.Cumulative.AreaVsIdeal())
		labels = append(labels, res.SUT)
		curves = append(curves, res.Cumulative)
	}
	report.CumulativePlot(os.Stdout, "cumulative queries over time", labels, curves, 80, 14)
}
