// Synthesize: the §V-C data-sharing pipeline end to end. A "production"
// operator records a drifting key trace it cannot publish, fits the
// workload synthesizer to it (optionally anonymizing hot-key identities),
// ships the compact model, and the benchmark side regenerates a
// statistically equivalent trace — verified with the benchmark's own Φ
// estimator and quality scorer — then benchmarks against the replica.
//
//	go run ./examples/synthesize
package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/quality"
	"repro/internal/similarity"
	"repro/internal/synth"
	"repro/internal/workload"
)

func main() {
	// --- Production side ---------------------------------------------
	const n = 60_000
	drift := distgen.NewSchedule(
		distgen.Static{G: distgen.NewZipfKeys(1, 1.2, 1<<20)},
		distgen.NewBlend(2,
			distgen.NewZipfKeys(3, 1.2, 1<<20),
			distgen.NewClustered(4, 12, 1e10)),
	)
	orig := make([]uint64, n)
	for i := range orig {
		orig[i] = drift.KeysAt(float64(i)/n, 1)[0]
	}
	model, err := synth.Fit(orig, synth.FitOptions{RemapSeed: 42}) // anonymized
	must(err)

	var wire bytes.Buffer
	must(model.Write(&wire))
	fmt.Printf("recorded %d keys; shareable model is %d bytes (%.1fx smaller)\n",
		n, wire.Len(), float64(n*8)/float64(wire.Len()))

	// --- Benchmark side ----------------------------------------------
	received, err := synth.Read(&wire)
	must(err)
	replica := received.Generate(n, 7)

	fmt.Printf("fidelity: KS(original, replica) = %.4f\n", similarity.KS(orig, replica))
	oq, rq := quality.Score(orig, nil), quality.Score(replica, nil)
	fmt.Printf("quality:  original %s\n          replica  %s\n", oq, rq)

	// Benchmark against the replica trace.
	scenario := core.Scenario{
		Name:        "replica-benchmark",
		Seed:        11,
		InitialData: distgen.NewZipfKeys(12, 1.2, 1<<20),
		InitialSize: 30_000,
		TrainBefore: true,
		IntervalNs:  500_000,
		Phases: []core.Phase{{
			Name: "replay",
			Ops:  n,
			Workload: workload.Spec{
				Mix:    workload.ReadHeavy,
				Access: distgen.NewReplay(replica),
			},
		}},
	}
	for _, f := range []func() core.SUT{core.NewRMISUT, core.NewBTreeSUT} {
		res, err := core.NewRunner().Run(scenario, f())
		must(err)
		fmt.Printf("benchmark on replica: %-6s %.0f ops/s (p99 %dns)\n",
			res.SUT, res.Throughput(), res.Latency.Quantile(0.99))
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
