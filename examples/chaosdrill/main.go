// Chaos drill: measure how learned and traditional indexes degrade and
// recover under a deterministic fault schedule, then run the same drill
// against the benchmark service's job queue (429 + Retry-After).
//
// Part 1 wraps each SUT with a fault injector on the run's own virtual
// clock: a slow-I/O window, a crash-restart that wipes learned state
// mid-run (the RMI must retrain; the B+ tree has nothing to relearn), and
// a full error outage. Identical seeds reproduce identical faults, so the
// recovery numbers are exact, not sampled.
//
// Part 2 stalls the service's only worker and overfills its queue: the
// service answers 429 with a Retry-After hint, and a polite client comes
// back marked X-Retry-Attempt — both visible in /metrics.
//
//	go run ./examples/chaosdrill
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/sim"

	lsbench "repro"
)

func main() {
	virtualDrill()
	serviceDrill()
}

func virtualDrill() {
	scenario := lsbench.Scenario{
		Name:        "chaosdrill",
		Seed:        42,
		InitialData: lsbench.NewUniform(1, 0, lsbench.KeyDomain),
		InitialSize: 50_000,
		TrainBefore: true,
		IntervalNs:  500_000,
		Phases: []lsbench.Phase{{
			Name: "steady",
			Ops:  100_000,
			Workload: lsbench.WorkloadSpec{
				Mix:    lsbench.ReadHeavy,
				Access: lsbench.Static{G: lsbench.NewZipfKeys(2, 1.1, 1<<21)},
			},
		}},
	}

	fmt.Println("=== chaos drill: virtual clock, deterministic faults ===")
	for _, factory := range []func() lsbench.SUT{lsbench.NewRMISUT, lsbench.NewBTreeSUT} {
		// Clean baseline: fixes the timebase the fault schedule is cut
		// from and the SLA band recovery is measured against.
		clean, err := lsbench.NewRunner().Run(scenario, factory())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		d := time.Duration(clean.DurationNs)

		// The drill: slow I/O at 15-25%, crash at 35%, outage at 55-65%.
		spec := fmt.Sprintf("slow@%v-%v:factor=8;crash@%v;error@%v-%v",
			d*15/100, d*25/100, d*35/100, d*55/100, d*65/100)
		plan, err := lsbench.ParseFaultSpec(spec, scenario.Seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		var inj *lsbench.FaultInjector
		runner := lsbench.NewRunner()
		runner.WrapSUT = func(s lsbench.SUT, clock sim.Clock) lsbench.SUT {
			inj = lsbench.NewFaultInjector(plan, clock)
			return lsbench.WithFaults(s, inj)
		}
		res, err := runner.Run(scenario, factory())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		start, end, _ := plan.OpFaultSpan()
		rec := res.Snapshot.Recovery(start, end, 0)
		report.RobustnessPanel(os.Stdout, res.SUT, res.Snapshot, rec)
		rep := inj.Report()
		fmt.Printf("  faults         %d slowed, %d failed, %d crash(es), retrain work %d\n\n",
			rep.SlowedOps, rep.FailedOps, rep.Crashes, rep.CrashRetrainWork)
	}
}

const drillSpec = `{
  "name": "drill",
  "seed": 3,
  "initialData": {"kind": "uniform"},
  "initialSize": 2000,
  "trainBefore": true,
  "intervalNs": 1000000,
  "phases": [{
    "name": "p",
    "ops": 5000,
    "mix": {"get": 0.9, "put": 0.1},
    "access": {"kind": "static", "gen": {"kind": "zipf", "theta": 1.1, "universe": 1048576}}
  }]
}`

func serviceDrill() {
	fmt.Println("=== chaos drill: service queue under a stalled worker ===")

	// One worker, one queue slot, and a fault plan that stalls the worker
	// for the first 1.5s of wall time.
	stall, err := lsbench.ParseFaultSpec("stall@0s-1500ms", 3)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	svc, err := service.New(service.Config{
		Workers:    1,
		QueueDepth: 1,
		Fault:      fault.NewInjector(stall, nil),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() { ts.Close(); svc.Close() }()

	body := fmt.Sprintf(`{"sut":"btree","spec":%s}`, drillSpec)
	submit := func(retry bool) (int, http.Header) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if retry {
			req.Header.Set("X-Retry-Attempt", "1")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, resp.Header
	}

	code1, _ := submit(false) // occupies the stalled worker
	code2, _ := submit(false) // fills the one queue slot
	code3, hdr := submit(false)
	fmt.Printf("  submit x3      -> %d, %d, %d (worker stalled, queue full)\n", code1, code2, code3)
	fmt.Printf("  Retry-After    %ss (derived from observed run latency)\n", hdr.Get("Retry-After"))

	// A polite client honors the hint: sleep Retry-After seconds, then
	// resubmit marked as a retry, until the woken worker drains the queue.
	wait, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || wait < 1 {
		wait = 1
	}
	for attempt := 1; ; attempt++ {
		time.Sleep(time.Duration(wait) * time.Second)
		code, _ := submit(true)
		fmt.Printf("  retry %d        -> %d (X-Retry-Attempt set)\n", attempt, code)
		if code == http.StatusAccepted {
			break
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "lsbench_jobs_rejected_total") ||
			strings.HasPrefix(line, "lsbench_jobs_retried_total") {
			fmt.Printf("  /metrics       %s\n", line)
		}
	}
}
