// Tuningcost: the Figure 1d experiment as a standalone program — an
// auto-tuner searches the kv store's knob space under increasing training
// budgets while a simulated DBA works through a manual tuning playbook;
// the output is throughput-per-dollar for both, the training cost at which
// the learned system outperforms the tuned traditional one, and the
// Lesson 4 TCO comparison.
//
//	go run ./examples/tuningcost
package main

import (
	"fmt"
	"os"

	"repro/internal/figures"
	"repro/internal/report"
)

func main() {
	res, err := figures.Fig1d(figures.SmallScale(), 17)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("learned curve (auto-tuner, CPU tier):")
	header := []string{"budget", "training $", "ops/s"}
	var rows [][]string
	for _, p := range res.LearnedCPU {
		rows = append(rows, []string{p.Label, fmt.Sprintf("%.2f", p.Dollars),
			fmt.Sprintf("%.0f", p.Throughput)})
	}
	report.Table(os.Stdout, header, rows)

	fmt.Println("\ntraditional curve (DBA at $120/h):")
	rows = rows[:0]
	for _, p := range res.Traditional {
		rows = append(rows, []string{p.Label, fmt.Sprintf("%.2f", p.Dollars),
			fmt.Sprintf("%.0f", p.Throughput)})
	}
	report.Table(os.Stdout, []string{"after action", "cumulative $", "ops/s"}, rows)
	fmt.Println()

	report.CostPlot(os.Stdout, "throughput per cost (Fig 1d)",
		res.LearnedCPU, res.Traditional, 80, 14)

	l4 := figures.Lesson4(res)
	fmt.Println("\nLesson 4 — pricing the human flips the TCO ranking:")
	fmt.Printf("  machine-only TCO: learned $%.0f vs traditional $%.0f\n",
		l4.MachineOnlyLearned, l4.MachineOnlyDBA)
	fmt.Printf("  with DBA priced:  learned $%.0f vs traditional $%.0f\n",
		l4.FullLearned, l4.FullDBA)
}
