// Holdout: out-of-sample evaluation per §V-A — systems tune themselves on
// a development scenario, then get exactly one attempt at sealed hold-out
// scenarios. The in-sample/out-of-sample gap exposes overfitting; a second
// attempt is refused, mirroring the benchmark-as-a-service rule.
//
//	go run ./examples/holdout
package main

import (
	"fmt"
	"os"

	lsbench "repro"
)

func devScenario() lsbench.Scenario {
	return lsbench.Scenario{
		Name:        "dev",
		Seed:        100,
		InitialData: lsbench.NewSequential(1, 1<<20, 64),
		InitialSize: 60_000,
		TrainBefore: true,
		IntervalNs:  500_000,
		Phases: []lsbench.Phase{{
			Name: "dev",
			Ops:  60_000,
			Workload: lsbench.WorkloadSpec{
				Mix:    lsbench.ReadHeavy,
				Access: lsbench.Static{G: lsbench.NewSequential(2, 1<<20, 64)},
			},
		}},
	}
}

func main() {
	reg := lsbench.NewHoldoutRegistry()
	// Hold-outs are registered as sealed factories: the SUT owner sees
	// only the names.
	must(reg.Register("holdout-alpha", func() lsbench.Scenario {
		return lsbench.Scenario{
			Name:        "holdout-alpha",
			Seed:        9001,
			InitialData: lsbench.NewClustered(3, 13, float64(lsbench.KeyDomain)/1e5),
			InitialSize: 60_000,
			TrainBefore: true,
			IntervalNs:  500_000,
			Phases: []lsbench.Phase{{
				Name: "alpha",
				Ops:  60_000,
				Workload: lsbench.WorkloadSpec{
					Mix:    lsbench.ReadHeavy,
					Access: lsbench.Static{G: lsbench.NewClustered(4, 13, float64(lsbench.KeyDomain)/1e5)},
				},
			}},
		}
	}))
	must(reg.Register("holdout-beta", func() lsbench.Scenario {
		return lsbench.Scenario{
			Name: "holdout-beta",
			Seed: 9002,
			InitialData: lsbench.NewMixture(5, []lsbench.Generator{
				lsbench.NewLognormal(6, 1, 1.5, 1e13),
				lsbench.NewEmail(7),
			}, []float64{0.5, 0.5}),
			InitialSize: 60_000,
			TrainBefore: true,
			IntervalNs:  500_000,
			Phases: []lsbench.Phase{{
				Name: "beta",
				Ops:  60_000,
				Workload: lsbench.WorkloadSpec{
					Mix: lsbench.Mix{GetFrac: 0.6, PutFrac: 0.3, ScanFrac: 0.1, ScanLimit: 50},
					Access: lsbench.NewBlend(8,
						lsbench.NewLognormal(9, 1, 1.5, 1e13),
						lsbench.NewEmail(10)),
				},
			}},
		}
	}))

	runner := lsbench.NewRunner()
	fmt.Printf("%-8s %-16s %12s\n", "sut", "scenario", "ops/s")
	for _, factory := range []func() lsbench.SUT{lsbench.NewRMISUT, lsbench.NewBTreeSUT} {
		// In-sample: the development scenario the SUT was tuned on.
		dev, err := runner.Run(devScenario(), factory())
		must(err)
		fmt.Printf("%-8s %-16s %12.0f\n", dev.SUT, "dev (in-sample)", dev.Throughput())

		for _, name := range []string{"holdout-alpha", "holdout-beta"} {
			res, err := reg.RunOnce(runner, name, factory)
			must(err)
			gap := res.Throughput() / dev.Throughput()
			fmt.Printf("%-8s %-16s %12.0f   (%.0f%% of in-sample)\n",
				res.SUT, name, res.Throughput(), gap*100)
		}
	}

	// The single-attempt rule is enforced:
	if _, err := reg.RunOnce(runner, "holdout-alpha", lsbench.NewRMISUT); err != nil {
		fmt.Printf("\nsecond attempt refused as required: %v\n", err)
	} else {
		fmt.Fprintln(os.Stderr, "BUG: second hold-out attempt was allowed")
		os.Exit(1)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
