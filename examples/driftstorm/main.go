// Driftstorm: a production-style evolving KV workload — diurnal load, a
// moving hot set, growing skew, and an abrupt key-space migration — run
// against the adaptive learned index (ALEX) and the B+ tree. This is the
// kind of single-run, multi-situation scenario the paper argues benchmarks
// must support (Lesson 1), with adaptation time and dip depth reported.
//
//	go run ./examples/driftstorm
package main

import (
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/report"

	lsbench "repro"
)

func main() {
	// Three situations in one run:
	//   1. moving hotspot over the loaded key range (diurnal load)
	//   2. growing skew (bursty load)
	//   3. abrupt migration to a new key region with an insert flood
	newRegionLo := lsbench.KeyDomain / 2
	scenario := lsbench.Scenario{
		Name:        "driftstorm",
		Seed:        7,
		InitialData: lsbench.NewUniform(1, 0, lsbench.KeyDomain/4),
		InitialSize: 150_000,
		IntervalNs:  1_000_000,
		Phases: []lsbench.Phase{
			{
				Name: "moving-hotspot",
				Ops:  120_000,
				Workload: lsbench.WorkloadSpec{
					Mix:    lsbench.ReadHeavy,
					Access: lsbench.NewMovingHotspot(2, 0.9, 0.02, 2),
				},
				Arrival: lsbench.NewDiurnal(3, 500_000, 0.6, 2),
			},
			{
				Name: "growing-skew",
				Ops:  120_000,
				Workload: lsbench.WorkloadSpec{
					Mix:    lsbench.Mix{GetFrac: 0.8, PutFrac: 0.2},
					Access: lsbench.NewGrowingSkew(4, 1.4, 1<<20),
				},
				Arrival: lsbench.NewBursty(5, 400_000, 5, 0.1, 4),
			},
			{
				Name: "migration",
				Ops:  120_000,
				Workload: lsbench.WorkloadSpec{
					Mix:        lsbench.Mix{GetFrac: 0.4, PutFrac: 0.6},
					Access:     lsbench.Static{G: lsbench.NewUniform(6, newRegionLo, newRegionLo+lsbench.KeyDomain/8)},
					InsertKeys: lsbench.Static{G: lsbench.NewUniform(7, newRegionLo, newRegionLo+lsbench.KeyDomain/8)},
				},
				Arrival: lsbench.NewDiurnal(8, 500_000, 0.6, 2),
			},
		},
	}

	runner := lsbench.NewRunner()
	for _, factory := range []func() lsbench.SUT{lsbench.NewALEXSUT, lsbench.NewBTreeSUT} {
		res, err := runner.Run(scenario, factory())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n", res.SUT)
		header := []string{"phase", "ops/s", "p99(ns)"}
		var rows [][]string
		for _, p := range res.Phases {
			rows = append(rows, []string{
				p.Name,
				fmt.Sprintf("%.0f", p.Throughput()),
				fmt.Sprintf("%d", p.Latency.Quantile(0.99)),
			})
		}
		report.Table(os.Stdout, header, rows)

		// Adaptability metrics around each phase change.
		for i := 1; i < len(res.PhaseStarts); i++ {
			changeAt := res.PhaseStarts[i]
			if d, ok := res.Timeline.AdaptationTime(changeAt, 0.8, 3); ok {
				fmt.Printf("adaptation after %q: recovered in %.2fms (dip depth %.0f%%)\n",
					res.Phases[i].Name, float64(d)/1e6, res.Timeline.DipDepth(changeAt)*100)
			} else {
				fmt.Printf("adaptation after %q: no recovery within the run (dip depth %.0f%%)\n",
					res.Phases[i].Name, res.Timeline.DipDepth(changeAt)*100)
			}
			adj := metrics.AdjustmentSpeed(res.PostChangeLatencies[i-1], res.SLANs, 2000)
			fmt.Printf("adjustment speed (first 2000 ops): %.3fms over SLA\n", float64(adj)/1e6)
		}
		fmt.Printf("online training work: %d units\n\n", res.OnlineTrainWork)
		report.BandChart(os.Stdout, "SLA bands — "+res.SUT, res.Bands, 8)
		fmt.Println()
	}
}
