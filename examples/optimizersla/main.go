// Optimizersla: a mini-SQL workload where mid-run data drift invalidates
// the static optimizer's analyzed statistics; a Bao-style steered
// optimizer with learned cardinality feedback recovers online. Output is
// the paper's Figure 1c view (SLA bands) on the SQL substrate, plus the
// adjustment-speed single-value metric.
//
//	go run ./examples/optimizersla
package main

import (
	"fmt"
	"os"

	"repro/internal/figures"
	"repro/internal/metrics"
	"repro/internal/report"
)

func main() {
	res, err := figures.OptDrift(figures.Scale{
		DataSize:   80_000,
		Ops:        40_000,
		IntervalNs: 500_000,
	}, 11)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var labels []string
	var curves []*metrics.CumCurve
	for _, name := range report.SortedKeys(res.Results) {
		r := res.Results[name]
		labels = append(labels, name)
		curves = append(curves, r.Cumulative)
		fmt.Printf("=== %s ===\n", name)
		fmt.Printf("throughput: %.0f queries/s over the whole run\n", r.Throughput())
		fmt.Printf("SLA %dns; over-SLA after the drift: %.3fms\n",
			r.SLANs, float64(res.AdjustmentSpeed[name])/1e6)
		fmt.Printf("training work: %d units (label collection + bandit updates)\n",
			r.TrainWork)
		report.BandChart(os.Stdout, "SLA bands", r.Bands, 8)
		fmt.Println()
	}
	report.CumulativePlot(os.Stdout,
		"cumulative queries (database drifts at the midpoint)", labels, curves, 90, 14)
	fmt.Println("\nThe static optimizer keeps planning from stale statistics after the")
	fmt.Println("shift; the steered optimizer explores briefly, learns the new")
	fmt.Println("cardinalities from execution feedback, and its slope recovers.")
}
