// Tracereplay: the record → replay → synthesize flywheel over the
// benchmark service. A recording job runs on the service, the client
// pulls the binary trace over HTTP, replays it locally (byte-identical
// result JSON — the portability contract), then fits the trace and
// sweeps the Redbench-style repeat-frac knob to study how temporal
// locality changes each SUT's behaviour under otherwise identical
// statistics.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/workload"
)

const spec = `{
  "name": "flywheel",
  "seed": 11,
  "initialData": {"kind": "uniform"},
  "initialSize": 20000,
  "trainBefore": true,
  "intervalNs": 1000000,
  "phases": [{
    "name": "prod",
    "ops": 40000,
    "mix": {"get": 0.8, "put": 0.15, "scan": 0.05, "scanLimit": 32},
    "access": {"kind": "static", "gen": {"kind": "zipf", "theta": 1.2, "universe": 1048576}},
    "arrival": {"kind": "poisson", "rate": 400000}
  }]
}`

func main() {
	// --- Service side: run and record ---------------------------------
	dir, err := os.MkdirTemp("", "tracereplay")
	must(err)
	defer os.RemoveAll(dir)
	svc, err := service.New(service.Config{TraceDir: dir})
	must(err)
	ts := httptest.NewServer(svc.Handler())
	defer func() { ts.Close(); svc.Close() }()

	job := submit(ts.URL, `{"sut": "btree", "record": true, "spec": `+spec+`}`)
	waitDone(ts.URL, job)
	golden := get(ts.URL + "/v1/jobs/" + job + "/result")
	traceData := get(ts.URL + "/v1/jobs/" + job + "/trace")
	fmt.Printf("service recorded job %s: %d bytes of trace, %d bytes of result JSON\n",
		job, len(traceData), len(golden))

	// --- Client side: replay locally ----------------------------------
	tr, err := workload.ReadTrace(bytes.NewReader(traceData))
	must(err)
	// Same initial database as the service's run: the spec's uniform
	// generator with the seed the config layer derives (seed+1).
	sc := core.Scenario{
		Name:        "flywheel",
		Seed:        11,
		InitialData: distgen.NewUniform(11+1, 0, distgen.KeyDomain),
		InitialSize: 20_000,
		TrainBefore: true,
		IntervalNs:  1_000_000,
	}
	for pi, ph := range tr.Phases {
		sc.Phases = append(sc.Phases, core.Phase{
			Name: ph.Name, Ops: len(ph.Ops), Source: tr.PhaseReader(pi),
		})
	}
	res, err := core.NewRunner().Run(sc, core.NewBTreeSUT())
	must(err)
	local, err := report.MarshalResult(res)
	must(err)
	if bytes.Equal(bytes.TrimSpace(local), bytes.TrimSpace(golden)) {
		fmt.Println("local replay reproduced the service's result JSON byte-for-byte")
	} else {
		fmt.Println("WARNING: local replay diverged from the service result")
	}

	// --- Flywheel: fit and sweep temporal locality --------------------
	st := workload.FitTrace(tr, workload.FitOptions{})
	fmt.Printf("\nfitted: %d ops, %d exact head keys, mean gap %.0fns\n",
		st.Ops, len(st.TopKeys), st.GapMeanNs)
	fmt.Println("\nrepeat-frac sweep (synthesized load, same fitted statistics):")
	fmt.Println("  frac   btree ops/s    rmi ops/s")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		row := fmt.Sprintf("  %.2f", frac)
		for _, mk := range []func() core.SUT{core.NewBTreeSUT, core.NewRMISUT} {
			ss := sc
			ss.Phases = []core.Phase{{
				Name:   "synth",
				Ops:    40_000,
				Source: workload.NewSynthesizer(st, 0, frac),
			}}
			r, err := core.NewRunner().Run(ss, mk())
			must(err)
			row += fmt.Sprintf("  %12.0f", r.Throughput())
		}
		fmt.Println(row)
	}
}

func submit(base, body string) string {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	must(err)
	defer resp.Body.Close()
	var v struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	must(json.NewDecoder(resp.Body).Decode(&v))
	if v.Error != "" {
		must(fmt.Errorf("submit: %s", v.Error))
	}
	return v.ID
}

func waitDone(base, id string) {
	for i := 0; i < 600; i++ {
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		must(json.Unmarshal(get(base+"/v1/jobs/"+id), &v))
		switch v.State {
		case "done":
			return
		case "failed", "canceled", "timeout":
			must(fmt.Errorf("job %s: %s (%s)", id, v.State, v.Error))
		}
		time.Sleep(50 * time.Millisecond)
	}
	must(fmt.Errorf("job %s never finished", id))
}

func get(url string) []byte {
	resp, err := http.Get(url)
	must(err)
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	must(err)
	return data
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracereplay:", err)
		os.Exit(1)
	}
}
