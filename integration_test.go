package lsbench_test

// Cross-module integration tests: each exercises a full pipeline the way a
// downstream user would (config -> runner -> report; record -> synthesize
// -> score -> benchmark; network driver end to end), asserting behaviours
// no single package test can see.

import (
	"strings"
	"testing"

	lsbench "repro"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/netdriver"
	"repro/internal/quality"
	"repro/internal/report"
	"repro/internal/similarity"
	"repro/internal/synth"
	"repro/internal/workload"
)

// TestConfigToReportPipeline runs a JSON-configured drift scenario through
// the runner and renders every report artifact.
func TestConfigToReportPipeline(t *testing.T) {
	doc := `{
	  "name": "integration",
	  "seed": 5,
	  "initialData": {"kind": "segmented", "segments": 12},
	  "initialSize": 8000,
	  "trainBefore": true,
	  "intervalNs": 200000,
	  "phases": [
	    {"name": "a", "ops": 4000,
	     "mix": {"get": 0.9, "put": 0.1},
	     "access": {"kind": "static", "gen": {"kind": "segmented", "segments": 12}}},
	    {"name": "b", "ops": 4000,
	     "mix": {"get": 0.4, "put": 0.6},
	     "access": {"kind": "growskew", "maxTheta": 1.3},
	     "arrival": {"kind": "bursty", "rate": 400000}}
	  ]
	}`
	scenario, err := config.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	results, err := lsbench.NewRunner().RunAll(scenario, lsbench.StandardSUTs())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	labels := make([]string, len(results))
	curves := make([]*metrics.CumCurve, len(results))
	for i, r := range results {
		labels[i] = r.SUT
		curves[i] = r.Cumulative
		report.BandChart(&sb, r.SUT, r.Bands, 8)
	}
	report.CumulativePlot(&sb, "integration", labels, curves, 80, 12)
	out := sb.String()
	for _, want := range []string{"btree", "rmi", "alex", "hash", "violation rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

// TestRecordSynthesizeBenchmark closes the §V-C loop: record a drifting
// trace, synthesize an equivalent one, verify the quality tool and the Φ
// estimator agree the two are interchangeable, then benchmark against the
// synthetic trace as the access distribution.
func TestRecordSynthesizeBenchmark(t *testing.T) {
	// 1. "Production" trace.
	drift := distgen.NewBlend(7,
		distgen.NewUniform(8, 0, distgen.KeyDomain/8),
		distgen.NewClustered(9, 6, 1e10))
	orig := make([]uint64, 20000)
	for i := range orig {
		orig[i] = drift.KeysAt(float64(i)/float64(len(orig)), 1)[0]
	}

	// 2. Fit + regenerate.
	model, err := synth.Fit(orig, synth.FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	syn := model.Generate(len(orig), 10)

	// 3. Interchangeability checks.
	if d := similarity.KS(orig, syn); d > 0.06 {
		t.Fatalf("synthetic trace KS %v too far from original", d)
	}
	oq, sq := quality.Score(orig, nil), quality.Score(syn, nil)
	if diff := oq.Overall - sq.Overall; diff > 0.15 || diff < -0.15 {
		t.Fatalf("quality diverged: %v vs %v", oq.Overall, sq.Overall)
	}

	// 4. Benchmark using the synthetic keys as a replayable trace.
	scenario := core.Scenario{
		Name:        "synthetic-replay",
		Seed:        11,
		InitialData: distgen.NewUniform(12, 0, distgen.KeyDomain),
		InitialSize: 5000,
		IntervalNs:  200_000,
		Phases: []core.Phase{{
			Name: "replay",
			Ops:  len(syn),
			Workload: workload.Spec{
				Mix:    workload.ReadHeavy,
				Access: distgen.NewReplay(syn),
			},
		}},
	}
	res, err := core.NewRunner().Run(scenario, core.NewBTreeSUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != int64(len(syn)) {
		t.Fatalf("replay completed %d of %d", res.Completed, len(syn))
	}
}

// TestNetworkDriverMatchesVirtualSemantics runs the same single-phase
// workload against a local SUT (virtual clock) and a remote SUT (real
// clock over TCP) and checks they agree on every non-timing observable.
func TestNetworkDriverMatchesVirtualSemantics(t *testing.T) {
	srv, err := netdriver.Serve("127.0.0.1:0", core.NewBTreeSUT)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	spec := workload.Spec{
		Mix:    workload.Balanced,
		Access: distgen.Static{G: distgen.NewUniform(13, 0, 1<<30)},
	}
	initial := distgen.NewUniform(14, 0, 1<<30)

	// Remote, real clock.
	client, err := netdriver.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	remote, err := driver.Run(client, spec, initial, 2000,
		driver.Options{Workers: 1, Ops: 3000, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}

	// Local, virtual clock — identical op stream (same seed derivation
	// as driver.Run uses for worker 0).
	localSUT := core.NewBTreeSUT()
	keys := distgen.UniqueKeys(distgen.NewUniform(14, 0, 1<<30), 2000)
	localSUT.Load(keys, core.LoadValues(keys))
	// Worker 0 of driver.Run derives its stream as seed + 0*7919 + 1.
	gen := workload.NewGenerator(spec, 15+1)
	for i := 0; i < 3000; i++ {
		localSUT.Do(gen.Next(float64(i) / 3000))
	}
	if remote.Completed != 3000 {
		t.Fatalf("remote completed %d", remote.Completed)
	}
	// The remote run used the same generator stream; spot-check final
	// database size equivalence via a full scan on both sides.
	remoteScan := client.Do(workload.Op{Type: workload.Scan, Key: 0, ScanLimit: 1 << 30})
	localScan := localSUT.Do(workload.Op{Type: workload.Scan, Key: 0, ScanLimit: 1 << 30})
	if remoteScan.Visited != localScan.Visited {
		t.Fatalf("diverged databases: remote %d keys, local %d keys",
			remoteScan.Visited, localScan.Visited)
	}
}

// TestDeterminismAcrossFullPipeline: two complete figure experiments with
// the same seed must produce byte-identical reports.
func TestDeterminismAcrossFullPipeline(t *testing.T) {
	render := func() string {
		scenario := lsbench.Scenario{
			Name:        "det",
			Seed:        77,
			InitialData: lsbench.NewZipfKeys(1, 1.1, 1<<20),
			InitialSize: 5000,
			TrainBefore: true,
			IntervalNs:  200_000,
			Phases: []lsbench.Phase{{
				Name: "p",
				Ops:  5000,
				Workload: lsbench.WorkloadSpec{
					Mix:    lsbench.Balanced,
					Access: lsbench.Static{G: lsbench.NewZipfKeys(2, 1.1, 1<<20)},
				},
				Arrival: lsbench.NewDiurnal(3, 500_000, 0.4, 1),
			}},
		}
		res, err := lsbench.NewRunner().Run(scenario, lsbench.NewALEXSUT())
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		report.BandChart(&sb, "det", res.Bands, 8)
		report.CumulativePlot(&sb, "det", []string{res.SUT},
			[]*metrics.CumCurve{res.Cumulative}, 60, 10)
		return sb.String()
	}
	if render() != render() {
		t.Fatal("full pipeline not deterministic")
	}
}
