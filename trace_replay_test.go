package lsbench_test

// Record → replay byte-identity: a run recorded through Runner.TraceSink,
// replayed phase-by-phase through workload.TraceReader sources, must
// reproduce the original run's result JSON byte-for-byte. This is the
// contract that makes recorded traces a portable substitute for the
// generator configuration that produced them.

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/report"
	"repro/internal/workload"
)

func TestTraceReplayByteIdentity(t *testing.T) {
	// Pin the initial database once so the recorded and replayed runs
	// load identical data (generators are stateful).
	keys := distgen.UniqueKeys(distgen.NewZipfKeys(43, 1.1, 1<<22), 10000)

	for _, sf := range []struct {
		name string
		mk   func() core.SUT
	}{
		{"btree", core.NewBTreeSUT},
		{"rmi", core.NewRMISUT},
	} {
		sf := sf
		t.Run(sf.name, func(t *testing.T) {
			s := batchGoldenScenario()
			s.InitialKeys = keys

			var buf bytes.Buffer
			w := workload.NewTraceWriter(&buf, s.Name, s.Seed)
			rec := core.NewRunner()
			rec.TraceSink = w
			base, err := rec.Run(s, sf.mk())
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			golden, err := report.MarshalResult(base)
			if err != nil {
				t.Fatal(err)
			}

			tr, err := workload.ReadTrace(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Truncated || len(tr.Phases) != len(s.Phases) || tr.TotalOps() != 8000 {
				t.Fatalf("recording: truncated=%v phases=%d ops=%d", tr.Truncated, len(tr.Phases), tr.TotalOps())
			}

			// The replay scenario carries no workload spec or arrival
			// process at all — only the trace.
			replay := core.Scenario{
				Name:        s.Name,
				Seed:        s.Seed,
				InitialKeys: keys,
				TrainBefore: s.TrainBefore,
				IntervalNs:  s.IntervalNs,
			}
			for pi, ph := range tr.Phases {
				replay.Phases = append(replay.Phases, core.Phase{
					Name:   ph.Name,
					Ops:    len(ph.Ops),
					Source: tr.PhaseReader(pi),
				})
			}

			for _, batch := range []int{0, 64} {
				r := core.NewRunner()
				r.Batch = batch
				res, err := r.Run(replay, sf.mk())
				if err != nil {
					t.Fatal(err)
				}
				got, err := report.MarshalResult(res)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, golden) {
					t.Fatalf("batch=%d: replayed result JSON diverges from recorded run\n--- replay ---\n%s\n--- recorded ---\n%s",
						batch, got, golden)
				}
			}
		})
	}
}
