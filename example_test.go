package lsbench_test

import (
	"fmt"

	lsbench "repro"
)

// ExampleRunner_Run benchmarks the learned RMI index on a stable zipfian
// read workload and prints the training-inclusive headline numbers. All
// runs are deterministic given the scenario seed.
func ExampleRunner_Run() {
	scenario := lsbench.Scenario{
		Name:        "example",
		Seed:        1,
		InitialData: lsbench.NewSequential(1, 1<<20, 64),
		InitialSize: 20_000,
		TrainBefore: true,
		IntervalNs:  1_000_000,
		Phases: []lsbench.Phase{{
			Name: "reads",
			Ops:  10_000,
			Workload: lsbench.WorkloadSpec{
				Mix:    lsbench.ReadHeavy,
				Access: lsbench.Static{G: lsbench.NewSequential(2, 1<<20, 64)},
			},
		}},
	}
	res, err := lsbench.NewRunner().Run(scenario, lsbench.NewRMISUT())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("sut=%s completed=%d models=%d trained=%v\n",
		res.SUT, res.Completed, res.Models, res.OfflineTrainWork > 0)
	// Output:
	// sut=rmi completed=10000 models=1025 trained=true
}

// ExampleHoldoutRegistry demonstrates the run-once out-of-sample rule of
// §V-A: the second attempt at a hold-out is refused.
func ExampleHoldoutRegistry() {
	reg := lsbench.NewHoldoutRegistry()
	_ = reg.Register("sealed", func() lsbench.Scenario {
		return lsbench.Scenario{
			Name:        "sealed",
			Seed:        2,
			InitialData: lsbench.NewUniform(3, 0, lsbench.KeyDomain),
			InitialSize: 1_000,
			Phases: []lsbench.Phase{{
				Name: "p",
				Ops:  500,
				Workload: lsbench.WorkloadSpec{
					Mix:    lsbench.ReadHeavy,
					Access: lsbench.Static{G: lsbench.NewUniform(4, 0, lsbench.KeyDomain)},
				},
			}},
		}
	})
	r := lsbench.NewRunner()
	if _, err := reg.RunOnce(r, "sealed", lsbench.NewBTreeSUT); err == nil {
		fmt.Println("first attempt: ok")
	}
	if _, err := reg.RunOnce(r, "sealed", lsbench.NewBTreeSUT); err != nil {
		fmt.Println("second attempt: refused")
	}
	// Output:
	// first attempt: ok
	// second attempt: refused
}
