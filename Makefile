# LSBench — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet test test-race race check cover bench bench-smoke figures examples clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency tier: the parallel orchestration layer (core.RunAll,
# cmd/figures -parallel) and the real-time driver must stay race-clean.
test-race:
	$(GO) test -race ./...

race: test-race

# check is the full local CI gate: build, vet, tier-1 tests, race tier.
check: build vet test test-race

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# One bench target per paper artifact; -benchtime=1x regenerates every
# series once (the figure experiments are full runs per iteration).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# bench-smoke runs every benchmark exactly once with no unit tests — a
# cheap CI guard that the bench harnesses (including the batched-dispatch
# micro-bench) still build and complete.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Regenerate every figure, lesson ablation, and extension experiment.
figures:
	$(GO) run ./cmd/figures

figures-full:
	$(GO) run ./cmd/figures -scale full

figures-csv:
	$(GO) run ./cmd/figures -csv out/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/driftstorm
	$(GO) run ./examples/optimizersla
	$(GO) run ./examples/tuningcost
	$(GO) run ./examples/holdout
	$(GO) run ./examples/synthesize

clean:
	rm -f cover.out test_output.txt bench_output.txt
	rm -rf out/
