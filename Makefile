# LSBench — build / test / reproduce targets.

GO ?= go

.PHONY: all build vet test test-race race test-cluster test-disk test-trace test-drift check cover bench bench-smoke bench-baseline bench-check bench-large figures examples clean

# bench-large dataset size. The committed default (1M) keeps CI minutes
# sane; the real tier is LARGE_N=100000000 (see EXPERIMENTS.md for the
# expected wall-clock and memory at that size).
LARGE_N ?= 1000000

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency tier: the parallel orchestration layer (core.RunAll,
# cmd/figures -parallel) and the real-time driver must stay race-clean.
test-race:
	$(GO) test -race ./...

race: test-race

# The distributed tier: coordinator + workers + the wire and store layers
# they depend on, under the race detector — the cluster's health/poll/
# anti-entropy loops are genuinely concurrent with dispatch.
test-cluster:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/service/ ./internal/netdriver/

# The storage tier: slotted-page pager, buffer pool + eviction policies,
# paged B+ tree, disk LSM, pool tuning, and the Fig 1f panel, under the
# race detector (the crash-safety suites hammer the same pool the figure
# runs fan out over).
test-disk:
	$(GO) test -race -count=1 ./internal/pager/ ./internal/index/diskbtree/ ./internal/kv/ ./internal/tuner/
	$(GO) test -race -count=1 -run 'TestFig1f' ./internal/figures/

# The trace tier: the workload Source seam, binary trace codec (round-trip,
# fuzz corpus, torn-tail truncation), synthesizer fidelity, and the layers
# that record/replay through them (runner goldens, config source clause,
# service trace endpoints, driver replay over the network), under the race
# detector — recording tees op streams off concurrently dispatching workers.
test-trace:
	$(GO) test -race -count=1 ./internal/workload/ ./internal/config/
	$(GO) test -race -count=1 -run 'TestTraceReplayByteIdentity' .
	$(GO) test -race -count=1 -run 'TestJobTrace' ./internal/service/
	$(GO) test -race -count=1 -run 'TestDriverReplayOverNetwork' ./internal/netdriver/

# The drift tier: the driftctl controller (coupling, divergence
# monotonicity, D=0 byte-identity), session arrivals + per-session SLA
# accounting through the runner/collector/report stack, the config and
# CLI drift/session clauses, and the Fig 1g sweep, under the race
# detector — the session driver test races real workers over
# session-paced sources.
test-drift:
	$(GO) test -race -count=1 ./internal/driftctl/
	$(GO) test -race -count=1 -run 'Session' ./internal/workload/ ./internal/metrics/ ./internal/core/ ./internal/driver/
	$(GO) test -race -count=1 -run 'TestControllerDriftClause|TestSessionArrivalClause|TestDriftSessionEndToEnd' ./internal/config/
	$(GO) test -race -count=1 -run 'TestFig1g' ./internal/figures/

# check is the full local CI gate: build, vet, tier-1 tests, race tier.
check: build vet test test-race

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# One bench target per paper artifact; -benchtime=1x regenerates every
# series once (the figure experiments are full runs per iteration). The
# large-scale tier is excluded — run it via bench-large, which sizes the
# dataset explicitly.
bench:
	$(GO) test -bench=. -skip='^BenchmarkLarge' -benchmem -benchtime=1x ./...

# bench-smoke runs every benchmark with no unit tests — a cheap CI guard
# that the bench harnesses (including the batched-dispatch micro-bench)
# still build and complete. Three single-iteration shots per benchmark are
# teed through benchguard (which keeps the best of the three) into
# BENCH_smoke.json for the regression gate; -benchmem records allocs/op so
# the gate also catches allocation regressions on the hot paths.
bench-smoke:
	$(GO) test -bench=. -skip='^BenchmarkLarge' -benchmem -benchtime=1x -count=3 -run='^$$' ./... | $(GO) run ./cmd/benchguard -emit BENCH_smoke.json

# bench-large runs the datagen-scale tier (BenchmarkLarge*) at LARGE_N keys
# — 100M by default in EXPERIMENTS.md, 1M here so CI finishes in minutes.
# No -race: the tier measures timing, and the race tier already covers the
# same parallel bulk-load/train code paths functionally.
bench-large:
	LSBENCH_LARGE_N=$(LARGE_N) $(GO) test -bench='^BenchmarkLarge' -benchmem -benchtime=1x -count=3 -run='^$$' -timeout=60m . | $(GO) run ./cmd/benchguard -emit BENCH_large.json

# bench-baseline promotes the latest smoke emission to the committed
# baseline. Rerun (and commit the result) when the benchmark set changes
# or a deliberate perf change moves the needle.
bench-baseline: bench-smoke
	cp BENCH_smoke.json BENCH_baseline.json

# bench-check fails when any heavyweight benchmark regressed more than
# 25% in ns/op against the committed baseline.
bench-check: bench-smoke
	$(GO) run ./cmd/benchguard -compare -max-regress 0.25

# Regenerate every figure, lesson ablation, and extension experiment.
figures:
	$(GO) run ./cmd/figures

figures-full:
	$(GO) run ./cmd/figures -scale full

figures-csv:
	$(GO) run ./cmd/figures -csv out/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/driftstorm
	$(GO) run ./examples/optimizersla
	$(GO) run ./examples/tuningcost
	$(GO) run ./examples/holdout
	$(GO) run ./examples/synthesize
	$(GO) run ./examples/chaosdrill

clean:
	rm -f cover.out test_output.txt bench_output.txt BENCH_smoke.json BENCH_large.json
	rm -rf out/
