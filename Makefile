# LSBench — build / test / reproduce targets.

GO ?= go

.PHONY: all build test race cover bench figures examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# One bench target per paper artifact; -benchtime=1x regenerates every
# series once (the figure experiments are full runs per iteration).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every figure, lesson ablation, and extension experiment.
figures:
	$(GO) run ./cmd/figures

figures-full:
	$(GO) run ./cmd/figures -scale full

figures-csv:
	$(GO) run ./cmd/figures -csv out/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/driftstorm
	$(GO) run ./examples/optimizersla
	$(GO) run ./examples/tuningcost
	$(GO) run ./examples/holdout
	$(GO) run ./examples/synthesize

clean:
	rm -f cover.out test_output.txt bench_output.txt
	rm -rf out/
