// Package lsbench is LSBench: a benchmark for learned data-management
// systems, implementing the design proposed in "Towards a Benchmark for
// Learned Systems" (Bindschaedler, Kipf, Kraska, Marcus, Minhas — ICDE
// 2021).
//
// The package is the public facade over the implementation in internal/:
// it exposes scenario construction, the standard systems under test
// (traditional B+ tree and hash indexes, RMI and ALEX-style learned
// indexes, a knob-tunable LSM KV store, histogram- and learned-estimator
// query optimizers), the virtual-time benchmark runner, the paper's four
// metric families (specialization box statistics, cumulative-completion
// area scores, SLA latency bands with adjustment speed, and
// training-cost/TCO curves), and the ready-made experiments that
// regenerate every panel of the paper's Figure 1.
//
// # Quick start
//
//	scenario := lsbench.Scenario{
//	    Name:        "quickstart",
//	    Seed:        42,
//	    InitialData: lsbench.NewZipfKeys(1, 1.1, 1<<22),
//	    InitialSize: 100_000,
//	    TrainBefore: true,
//	    Phases: []lsbench.Phase{{
//	        Name: "steady",
//	        Ops:  200_000,
//	        Workload: lsbench.WorkloadSpec{
//	            Mix:    lsbench.ReadHeavy,
//	            Access: lsbench.Static{G: lsbench.NewZipfKeys(2, 1.1, 1<<22)},
//	        },
//	    }},
//	}
//	result, err := lsbench.NewRunner().Run(scenario, lsbench.NewRMISUT())
//
// See examples/ for complete programs and cmd/figures for the full
// figure-regeneration pipeline.
package lsbench

import (
	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Re-exported scenario model. These are type aliases, so values flow
// freely between the facade and the internal packages.
type (
	// Scenario is a full benchmark configuration (§V-B).
	Scenario = core.Scenario
	// Phase is one workload segment of a scenario.
	Phase = core.Phase
	// Runner executes scenarios on the deterministic virtual clock.
	Runner = core.Runner
	// Result carries every Figure 1 metric family for one run.
	Result = core.Result
	// PhaseResult is the per-phase breakdown.
	PhaseResult = core.PhaseResult
	// SUT is a key-value system under test.
	SUT = core.SUT
	// Trainable marks SUTs with an explicit training step (Lesson 3).
	Trainable = core.Trainable
	// OpResult reports one executed operation.
	OpResult = core.OpResult
	// TrainReport accounts a training phase.
	TrainReport = core.TrainReport
	// HoldoutRegistry provides run-once out-of-sample evaluation (§V-A).
	HoldoutRegistry = core.HoldoutRegistry

	// WorkloadSpec generates a phase's operation stream.
	WorkloadSpec = workload.Spec
	// Mix fixes operation-type proportions.
	Mix = workload.Mix
	// Op is one generated operation.
	Op = workload.Op
	// Arrival paces open-loop workloads (Poisson, diurnal, bursts).
	Arrival = workload.Arrival

	// Generator produces synthetic keys from a fixed distribution.
	Generator = distgen.Generator
	// Drift produces keys from a distribution evolving over progress.
	Drift = distgen.Drift
	// Static adapts a Generator into a non-evolving Drift.
	Static = distgen.Static
)

// Standard operation mixes (YCSB-inspired).
var (
	ReadHeavy  = workload.ReadHeavy
	Balanced   = workload.Balanced
	WriteHeavy = workload.WriteHeavy
	ScanHeavy  = workload.ScanHeavy
)

// NewRunner returns a benchmark runner with the default calibrated cost
// model.
func NewRunner() *Runner { return core.NewRunner() }

// NewHoldoutRegistry returns an empty hold-out registry.
func NewHoldoutRegistry() *HoldoutRegistry { return core.NewHoldoutRegistry() }

// Standard systems under test.
var (
	// NewBTreeSUT builds the traditional B+ tree baseline.
	NewBTreeSUT = core.NewBTreeSUT
	// NewHashSUT builds the extendible-hashing baseline.
	NewHashSUT = core.NewHashSUT
	// NewRMISUT builds the static learned index (two-stage RMI).
	NewRMISUT = core.NewRMISUT
	// NewALEXSUT builds the adaptive learned index.
	NewALEXSUT = core.NewALEXSUT
	// NewKVSUTDefault builds the log-structured KV store, untuned.
	NewKVSUTDefault = core.NewKVSUTDefault
	// StandardSUTs returns the full comparison lineup.
	StandardSUTs = core.StandardSUTs
)

// Data distribution generators (see internal/distgen for parameters).
var (
	NewUniform       = distgen.NewUniform
	NewNormal        = distgen.NewNormal
	NewLognormal     = distgen.NewLognormal
	NewZipfKeys      = distgen.NewZipfKeys
	NewClustered     = distgen.NewClustered
	NewSegmented     = distgen.NewSegmented
	NewSequential    = distgen.NewSequential
	NewEmail         = distgen.NewEmail
	NewMixture       = distgen.NewMixture
	NewBlend         = distgen.NewBlend
	NewAbrupt        = distgen.NewAbrupt
	NewMovingHotspot = distgen.NewMovingHotspot
	NewGrowingSkew   = distgen.NewGrowingSkew
	NewSchedule      = distgen.NewSchedule
)

// Arrival processes.
var (
	NewPoisson = workload.NewPoisson
	NewDiurnal = workload.NewDiurnal
	NewBursty  = workload.NewBursty
)

// Fault injection and recovery measurement (the robustness view, Fig 1e).
// A FaultPlan is a seeded schedule of fault windows; wrapping a SUT with
// an injector driven by the run's clock makes the same seed reproduce the
// same faults byte for byte.
type (
	// FaultPlan is a deterministic schedule of fault windows.
	FaultPlan = fault.Plan
	// FaultWindow is one fault interval (or instant, for crashes).
	FaultWindow = fault.Window
	// FaultInjector turns a plan into per-operation decisions.
	FaultInjector = fault.Injector
	// FaultReport is the injector's ledger of what actually fired.
	FaultReport = fault.Report
	// RecoveryStats is the post-fault recovery view of a run's snapshot.
	RecoveryStats = metrics.RecoveryStats
)

// Fault kinds for hand-built FaultWindow values (ParseFaultSpec covers
// the common cases).
const (
	FaultSlowOps      = fault.SlowOps
	FaultErrorOps     = fault.ErrorOps
	FaultCrashRestart = fault.CrashRestart
	FaultWireDrop     = fault.WireDrop
	FaultWireDelay    = fault.WireDelay
	FaultWorkerStall  = fault.WorkerStall
)

var (
	// ParseFaultSpec parses "kind@start-end:param,..." schedules, e.g.
	// "slow@10ms-20ms:factor=8;crash@35ms;error@55ms-65ms".
	ParseFaultSpec = fault.ParseSpec
	// NewFaultInjector builds an injector for a plan (nil clock = wall).
	NewFaultInjector = fault.NewInjector
	// WithFaults wraps a SUT so the injector's decisions apply to every
	// operation. Typically installed via Runner.WrapSUT so the injector
	// shares the run's virtual clock.
	WithFaults = fault.Wrap
)

// KeyDomain is the key universe upper bound used by bounded generators.
const KeyDomain = distgen.KeyDomain
