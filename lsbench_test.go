package lsbench

import (
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quick start does.
func TestFacadeEndToEnd(t *testing.T) {
	scenario := Scenario{
		Name:        "facade",
		Seed:        42,
		InitialData: NewZipfKeys(1, 1.1, 1<<22),
		InitialSize: 10_000,
		TrainBefore: true,
		IntervalNs:  200_000,
		Phases: []Phase{{
			Name: "steady",
			Ops:  5_000,
			Workload: WorkloadSpec{
				Mix:    ReadHeavy,
				Access: Static{G: NewZipfKeys(2, 1.1, 1<<22)},
			},
		}},
	}
	for _, factory := range StandardSUTs() {
		res, err := NewRunner().Run(scenario, factory())
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != 5000 || res.Throughput() <= 0 {
			t.Fatalf("%s: completed=%d", res.SUT, res.Completed)
		}
	}
}

func TestFacadeDriftingScenario(t *testing.T) {
	scenario := Scenario{
		Name:        "drifting",
		Seed:        7,
		InitialData: NewUniform(1, 0, KeyDomain),
		InitialSize: 5_000,
		IntervalNs:  200_000,
		Phases: []Phase{{
			Name: "drift",
			Ops:  5_000,
			Workload: WorkloadSpec{
				Mix: Balanced,
				Access: NewBlend(2,
					NewUniform(3, 0, KeyDomain/2),
					NewClustered(4, 10, 1e9)),
			},
			Arrival: NewDiurnal(5, 500_000, 0.5, 2),
		}},
	}
	res, err := NewRunner().Run(scenario, NewALEXSUT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bands.SLA() <= 0 {
		t.Fatal("no SLA")
	}
}

func TestFacadeHoldout(t *testing.T) {
	reg := NewHoldoutRegistry()
	if err := reg.Register("h1", func() Scenario {
		return Scenario{
			Name:        "h1",
			Seed:        9,
			InitialData: NewSegmented(10, 8),
			InitialSize: 2_000,
			Phases: []Phase{{
				Name: "p",
				Ops:  1_000,
				Workload: WorkloadSpec{
					Mix:    ReadHeavy,
					Access: Static{G: NewSegmented(11, 8)},
				},
			}},
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.RunOnce(NewRunner(), "h1", NewRMISUT); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.RunOnce(NewRunner(), "h1", NewRMISUT); err == nil {
		t.Fatal("second hold-out attempt allowed")
	}
}
