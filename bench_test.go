package lsbench

// This file is the benchmark harness required by DESIGN.md: one testing.B
// target per paper artifact (Figure 1a-1d and the four Lessons), each
// regenerating the corresponding data series and reporting the headline
// numbers as benchmark metrics, plus micro-benchmarks that calibrate the
// virtual-time cost model against real hardware.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The figure benches execute the full experiment once per iteration on
// the deterministic virtual clock, so -benchtime=1x is enough to
// regenerate the series; ReportMetric exposes the paper's single-value
// metrics (area scores, adjustment speed, cost to outperform).

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/distgen"
	"repro/internal/driftctl"
	"repro/internal/figures"
	"repro/internal/index/alex"
	"repro/internal/index/btree"
	"repro/internal/index/diskbtree"
	"repro/internal/index/rmi"
	"repro/internal/kv"
	"repro/internal/learnedsort"
	"repro/internal/pager"
	"repro/internal/quality"
	"repro/internal/similarity"
	"repro/internal/synth"
	"repro/internal/workload"
)

func benchScale() figures.Scale { return figures.SmallScale() }

// BenchmarkFig1aSpecialization regenerates Figure 1a: throughput box
// statistics per workload/data distribution, sorted by Φ.
func BenchmarkFig1aSpecialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig1a(benchScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		// Report the learned index's specialization spread (max/min
		// median across distributions) vs. the traditional baseline's.
		spread := func(sut string) float64 {
			lo, hi := 0.0, 0.0
			for i, r := range res.Rows[sut] {
				m := r.Summary.Median
				if i == 0 || m < lo {
					lo = m
				}
				if i == 0 || m > hi {
					hi = m
				}
			}
			if lo == 0 {
				return 0
			}
			return hi / lo
		}
		b.ReportMetric(spread("rmi"), "rmi-spread")
		b.ReportMetric(spread("btree"), "btree-spread")
	}
}

// BenchmarkFig1aWorkloadSimilarity regenerates the workload-similarity
// variant of Figure 1a: Φ = Jaccard distance over plan subtrees (§V-D1).
func BenchmarkFig1aWorkloadSimilarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig1aWorkload(benchScale(), 51)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Phi["extra-filter"], "phi-extra-filter")
		b.ReportMetric(res.Phi["three-way"], "phi-three-way")
		b.ReportMetric(res.Phi["disjoint-scan"], "phi-disjoint")
	}
}

// BenchmarkFig1bCumulative regenerates Figure 1b: cumulative queries over
// time with the area-vs-ideal and two-system area-difference scores.
func BenchmarkFig1bCumulative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig1b(benchScale(), 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AreaVsIdeal["rmi"], "rmi-area-vs-ideal")
		b.ReportMetric(res.AreaVsIdeal["btree"], "btree-area-vs-ideal")
		b.ReportMetric(res.AreaBetween, "area-between")
	}
}

// BenchmarkFig1cSLABands regenerates Figure 1c: SLA latency bands and the
// adjustment-speed single-value metric after a distribution change.
func BenchmarkFig1cSLABands(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig1c(benchScale(), 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.AdjustmentSpeed["rmi"])/1e6, "rmi-adjust-ms")
		b.ReportMetric(float64(res.AdjustmentSpeed["alex"])/1e6, "alex-adjust-ms")
		b.ReportMetric(float64(res.AdjustmentSpeed["btree"])/1e6, "btree-adjust-ms")
		b.ReportMetric(res.ViolationRate["rmi"]*100, "rmi-viol-pct")
	}
}

// BenchmarkFig1dCostCurve regenerates Figure 1d: throughput per training
// cost vs. the DBA step function, with the training-cost-to-outperform
// headline metric.
func BenchmarkFig1dCostCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig1d(benchScale(), 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CostToOutperformCPU, "outperform-$cpu")
		b.ReportMetric(res.CostToOutperformGPU, "outperform-$gpu")
		dba := res.Traditional[len(res.Traditional)-1]
		b.ReportMetric(dba.Dollars, "dba-total-$")
	}
}

// BenchmarkLesson1FixedVsVarying quantifies how a fixed benchmark
// overstates the learned system's advantage.
func BenchmarkLesson1FixedVsVarying(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Lesson1(benchScale(), 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FixedRatio, "fixed-ratio")
		b.ReportMetric(res.DriftRatio, "drift-ratio")
	}
}

// BenchmarkLesson2AverageHides shows two configurations with near-equal
// averages but divergent tails.
func BenchmarkLesson2AverageHides(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Lesson2(benchScale(), 6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanGapFraction*100, "mean-gap-pct")
		b.ReportMetric(res.TailRatio, "p99-ratio")
	}
}

// BenchmarkLesson3Training reports the training-inclusive break-even
// query count.
func BenchmarkLesson3Training(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Lesson3(benchScale(), 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TrainNs)/1e6, "train-ms")
		b.ReportMetric(res.BreakEvenQueries, "breakeven-queries")
	}
}

// BenchmarkLesson4TCO reports TCO with and without the human cost.
func BenchmarkLesson4TCO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := figures.Fig1d(benchScale(), 8)
		if err != nil {
			b.Fatal(err)
		}
		res := figures.Lesson4(fig)
		b.ReportMetric(res.FullLearned, "learned-tco-$")
		b.ReportMetric(res.FullDBA, "dba-tco-$")
	}
}

// BenchmarkOptimizerDrift regenerates the learned-query-optimizer drift
// experiment (extension of Fig 1b/1c onto the SQL substrate).
func BenchmarkOptimizerDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.OptDrift(benchScale(), 9)
		if err != nil {
			b.Fatal(err)
		}
		static := res.Results["static-histogram"]
		learned := res.Results["learned-steered"]
		b.ReportMetric(static.Throughput(), "static-q/s")
		b.ReportMetric(learned.Throughput(), "learned-q/s")
	}
}

// BenchmarkAblationSLA compares calibrated vs fixed SLA thresholds
// (DESIGN.md §5.1).
func BenchmarkAblationSLA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.AblationSLA(benchScale(), 21)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CalibratedViolationRate*100, "calibrated-viol-pct")
		b.ReportMetric(res.LooseViolationRate*100, "loose-viol-pct")
		b.ReportMetric(res.TightViolationRate*100, "tight-viol-pct")
	}
}

// BenchmarkAblationPhi measures KS/MMD ordering agreement (DESIGN.md §5.2).
func BenchmarkAblationPhi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := figures.AblationPhi(22)
		b.ReportMetric(res.OrderAgreement*100, "agreement-pct")
	}
}

// BenchmarkAblationTransition compares abrupt vs gradual transitions
// (DESIGN.md §5.3).
func BenchmarkAblationTransition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.AblationTransition(benchScale(), 23)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AbruptDip*100, "abrupt-dip-pct")
		b.ReportMetric(res.GradualDip*100, "gradual-dip-pct")
	}
}

// BenchmarkAblationTrainingPlacement compares online vs scheduled
// retraining (DESIGN.md §5.4).
func BenchmarkAblationTrainingPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.AblationTrainingPlacement(benchScale(), 24)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.OnlineOverSLA)/1e6, "online-oversla-ms")
		b.ReportMetric(float64(res.ScheduledOverSLA)/1e6, "scheduled-oversla-ms")
	}
}

// BenchmarkAblationHoldout measures the in/out-of-sample gap (DESIGN.md §5.5).
func BenchmarkAblationHoldout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.AblationHoldout(benchScale(), 25)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LearnedGap, "learned-gap")
		b.ReportMetric(res.TraditionalGap, "traditional-gap")
	}
}

// BenchmarkLearnedCache compares LRU / LFU / learned eviction against the
// Belady bound on drifting and scan-polluted traces.
func BenchmarkLearnedCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := figures.CacheExperiment(benchScale(), 31)
		scans := res.HitRate["zipf+scans"]
		b.ReportMetric(scans["lru"]*100, "scans-lru-pct")
		b.ReportMetric(scans["learned"]*100, "scans-learned-pct")
		b.ReportMetric(res.Belady["zipf+scans"]*100, "scans-belady-pct")
	}
}

// BenchmarkQualityScorer exercises the §V-C dataset-quality tool.
func BenchmarkQualityScorer(b *testing.B) {
	keys := distgen.NewZipfKeys(1, 1.2, 100000).Keys(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := quality.Score(keys, nil)
		if i == 0 {
			b.ReportMetric(r.Overall, "overall-score")
		}
	}
}

// BenchmarkLearnedScheduler compares scheduling policies on a drifting
// job workload (learned scheduling, paper §II / [30]).
func BenchmarkLearnedScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := figures.SchedExperiment(benchScale(), 41)
		b.ReportMetric(res.MeanSojournNs["fifo"]/1e6, "fifo-ms")
		b.ReportMetric(res.MeanSojournNs["static-sjf"]/1e6, "static-ms")
		b.ReportMetric(res.MeanSojournNs["learned-sjf"]/1e6, "learned-ms")
		b.ReportMetric(res.MeanSojournNs["oracle-sjf"]/1e6, "oracle-ms")
	}
}

// BenchmarkSynthesizer exercises the §V-C workload synthesizer: fit a
// drifting trace, regenerate, and report the marginal fidelity (KS).
func BenchmarkSynthesizer(b *testing.B) {
	d := distgen.NewBlend(1,
		distgen.NewLognormal(2, 0, 1.5, 1e12),
		distgen.NewClustered(3, 8, 1e9))
	trace := make([]uint64, 40000)
	for i := range trace {
		trace[i] = d.KeysAt(float64(i)/float64(len(trace)), 1)[0]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := synth.Fit(trace, synth.FitOptions{})
		if err != nil {
			b.Fatal(err)
		}
		syn := m.Generate(len(trace), 4)
		if i == 0 {
			b.ReportMetric(similarity.KS(trace, syn), "ks-orig-vs-synth")
		}
	}
}

// BenchmarkSimilarity exercises the Φ estimators (§V-D1).
func BenchmarkSimilarity(b *testing.B) {
	a := distgen.NewUniform(1, 0, 1<<40).Keys(10000)
	c := distgen.NewClustered(2, 10, 1e8).Keys(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = similarity.KS(a, c)
		_ = similarity.MMDSub(a, c, 0, 200)
	}
}

// --- Micro-benchmarks calibrating the virtual cost model ------------------

func loadedKeys(n int) ([]uint64, []uint64) {
	keys := distgen.UniqueKeys(distgen.NewUniform(1, 0, 1<<40), n)
	vals := make([]uint64, len(keys))
	return keys, vals
}

func BenchmarkMicroBTreeGet(b *testing.B) {
	keys, vals := loadedKeys(1_000_000)
	tr := btree.NewDefault()
	tr.BulkLoad(keys, vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%len(keys)])
	}
}

func BenchmarkMicroRMIGet(b *testing.B) {
	keys, vals := loadedKeys(1_000_000)
	ix := rmi.NewDefault()
	ix.BulkLoad(keys, vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Get(keys[i%len(keys)])
	}
}

func BenchmarkMicroALEXGet(b *testing.B) {
	keys, vals := loadedKeys(1_000_000)
	ix := alex.New()
	ix.BulkLoad(keys, vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Get(keys[i%len(keys)])
	}
}

func BenchmarkMicroALEXInsert(b *testing.B) {
	ix := alex.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(uint64(i)*2654435761, uint64(i))
	}
}

func BenchmarkMicroBTreeInsert(b *testing.B) {
	tr := btree.NewDefault()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(i)*2654435761, uint64(i))
	}
}

func BenchmarkMicroLearnedSort(b *testing.B) {
	src := distgen.NewLognormal(1, 0, 2, 1e9).Keys(200000)
	buf := make([]uint64, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		learnedsort.SortAuto(buf, 0)
	}
}

func BenchmarkMicroStdSort(b *testing.B) {
	src := distgen.NewLognormal(1, 0, 2, 1e9).Keys(200000)
	buf := make([]uint64, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		learnedsort.StdSort(buf)
	}
}

// BenchmarkFig1fStorage regenerates Figure 1f: the storage-tier panel
// (cold-cache policy shootout, pool-size sweep, write-heavy compaction).
func BenchmarkFig1fStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig1f(benchScale(), 10)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 1.0, 0.0
		for _, c := range res.Cold {
			if c.HitRatio < lo {
				lo = c.HitRatio
			}
			if c.HitRatio > hi {
				hi = c.HitRatio
			}
		}
		b.ReportMetric((hi-lo)*100, "cold-policy-gap-pct")
		b.ReportMetric(res.IOBound[len(res.IOBound)-1].Throughput/res.IOBound[0].Throughput, "pool-sweep-speedup")
		for _, p := range res.WriteHeavy {
			if p.SUT == "disk-btree" {
				b.ReportMetric(float64(p.PagesWritten), "btree-pages-written")
			}
		}
	}
}

// --- Disk storage-tier micro-benchmarks -----------------------------------

// newBenchPool builds an in-memory page file under a pool of the given
// configuration, failing the benchmark on error.
func newBenchPool(b *testing.B, knobs pager.PoolKnobs) *pager.Pool {
	b.Helper()
	f, err := pager.Create(pager.NewMemBackend())
	if err != nil {
		b.Fatal(err)
	}
	return pager.NewPool(f, knobs)
}

// BenchmarkDiskBTreeGet measures point lookups through the paged B+ tree:
// warm = a pool big enough to hold the whole tree (pure CPU + pool
// bookkeeping), cold = a small pool thrashing on random access (every
// lookup pays backend page reads).
func BenchmarkDiskBTreeGet(b *testing.B) {
	keys, vals := loadedKeys(200_000)
	run := func(b *testing.B, knobs pager.PoolKnobs, drop bool) {
		pool := newBenchPool(b, knobs)
		tr := diskbtree.New(pool)
		tr.BulkLoad(keys, vals)
		if drop {
			if err := pool.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			if err := pool.DropCache(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Get(keys[(i*16777619)%len(keys)])
		}
	}
	b.Run("warm", func(b *testing.B) {
		run(b, pager.PoolKnobs{Pages: 4096, Policy: "lru"}, false)
	})
	b.Run("cold", func(b *testing.B) {
		run(b, pager.PoolKnobs{Pages: 64, Policy: "lru"}, true)
	})
}

// BenchmarkDiskLSMPut measures the disk LSM write path end to end:
// memtable inserts, run-file flushes through the pager, and size-tiered
// compaction rewrites.
func BenchmarkDiskLSMPut(b *testing.B) {
	store, err := kv.OpenDisk(newBenchPool(b, pager.PoolKnobs{Pages: 256, Policy: "lru"}), kv.DefaultKnobs())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Put(uint64(i)*2654435761, uint64(i))
	}
}

// BenchmarkMicroRunnerOverhead measures the virtual runner's per-op cost.
func BenchmarkMicroRunnerOverhead(b *testing.B) {
	scenario := core.Scenario{
		Name:        "overhead",
		Seed:        1,
		InitialData: distgen.NewUniform(1, 0, 1<<40),
		InitialSize: 10000,
		IntervalNs:  1_000_000,
		Phases: []core.Phase{{
			Name: "p",
			Ops:  100000,
			Workload: workload.Spec{
				Mix:    workload.ReadHeavy,
				Access: distgen.Static{G: distgen.NewUniform(2, 0, 1<<40)},
			},
		}},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewRunner().Run(scenario, core.NewBTreeSUT()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroRunnerDispatch measures the runner's steady-state per-op
// dispatch cost: one run whose single phase executes b.N read-only ops, so
// per-run setup (SUT load, collector, result) amortizes away and allocs/op
// converges on the true per-op allocation count — which must be 0 (key
// draws go through fixed buffers, dispatch buffers come from a pool, and
// batch reordering reuses a scratch permutation).
func BenchmarkMicroRunnerDispatch(b *testing.B) {
	scenario := core.Scenario{
		Name:        "dispatch",
		Seed:        1,
		InitialData: distgen.NewUniform(1, 0, 1<<40),
		InitialSize: 100000,
		IntervalNs:  1_000_000,
		Phases: []core.Phase{{
			Name: "p",
			Ops:  b.N,
			Workload: workload.Spec{
				Mix:    workload.Mix{GetFrac: 1},
				Access: distgen.Static{G: distgen.NewUniform(2, 0, 1<<40)},
			},
		}},
	}
	r := core.NewRunner()
	r.Batch = 64
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := r.Run(scenario, core.NewBTreeSUT()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTraceReplay measures the replay seam: each iteration copies one
// 64-op batch (ops + gaps) out of a pinned in-memory trace through
// TraceReader.Fill — the exact path the runner takes for materialized
// phases and recorded-trace replay. Replay is a pure copy and must stay at
// 0 allocs/op, so substituting a trace for a generator never perturbs the
// measured system with garbage.
func BenchmarkTraceReplay(b *testing.B) {
	const n, batch = 1 << 16, 64
	src := workload.NewSource(workload.Spec{
		Mix:    workload.Mix{GetFrac: 0.7, PutFrac: 0.2, DeleteFrac: 0.05, ScanFrac: 0.05, ScanLimit: 16},
		Access: distgen.Static{G: distgen.NewUniform(2, 0, 1<<40)},
	}, nil, 1)
	ops := make([]workload.Op, n)
	gaps := make([]int64, n)
	src.Fill(ops, gaps, 0, n)
	tr := workload.NewTraceReader("bench", ops, gaps)
	bo := make([]workload.Op, batch)
	bg := make([]int64, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := (i % (n / batch)) * batch
		if got := tr.Fill(bo, bg, pos, n); got != batch {
			b.Fatalf("short fill at pos %d: %d", pos, got)
		}
	}
}

// BenchmarkSynthFill measures the synthesizer's per-batch op generation:
// statistics are fitted once from a recorded stream (setup, untimed), then
// each iteration draws one 64-op batch from the fitted popularity/gap/mix
// model with Redbench-style repetition enabled.
func BenchmarkSynthFill(b *testing.B) {
	const n, batch = 1 << 16, 64
	src := workload.NewSource(workload.Spec{
		Mix:    workload.Mix{GetFrac: 0.7, PutFrac: 0.2, DeleteFrac: 0.05, ScanFrac: 0.05, ScanLimit: 16},
		Access: distgen.Static{G: distgen.NewZipfKeys(3, 1.1, 1<<22)},
	}, nil, 1)
	ops := make([]workload.Op, n)
	gaps := make([]int64, n)
	src.Fill(ops, gaps, 0, n)
	st := workload.FitStream(ops, gaps, workload.FitOptions{})
	syn := workload.NewSynthesizer(st, 7, 0.25)
	bo := make([]workload.Op, batch)
	bg := make([]int64, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syn.Fill(bo, bg, i*batch, 1<<30)
	}
}

// BenchmarkFig1gDriftSweep regenerates Figure 1g: the metric quadruple
// vs drift intensity across the data/query/session panels, reporting the
// endpoints' headline ratios.
func BenchmarkFig1gDriftSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig1g(benchScale(), 42)
		if err != nil {
			b.Fatal(err)
		}
		cell := func(d float64, sut string) float64 {
			for _, c := range res.Data {
				if c.D == d && c.SUT == sut {
					return c.Throughput
				}
			}
			b.Fatalf("missing data cell D=%v %s", d, sut)
			return 0
		}
		last := res.Intensities[len(res.Intensities)-1]
		b.ReportMetric(cell(0, "alex")/cell(last, "alex"), "alex-slowdown")
		b.ReportMetric(cell(0, "btree")/cell(last, "btree"), "btree-slowdown")
	}
}

// BenchmarkDriftFill measures the drift controller's hot path: each
// iteration fills one 64-key batch at mid-profile intensity, paying the
// coupled base+target draws plus the selection variate per key. The
// controller sits on the op-generation fast path, so it must stay at
// 0 allocs/op (benchguard-gated).
func BenchmarkDriftFill(b *testing.B) {
	const batch = 64
	ctrl := driftctl.NewCalibrated(9,
		func(s uint64) distgen.Generator { return distgen.NewUniform(s, 0, 1<<40) },
		func(s uint64) distgen.Generator { return distgen.NewZipfKeys(s, 1.1, 1<<22) },
		driftctl.Knob{Factor: 0.5, Profile: driftctl.Ramp()}, 0)
	out := make([]uint64, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.FillAt(0.5, out)
	}
}

// BenchmarkSessionArrival measures the IDEBench-style session pacer: one
// think/intra gap draw per iteration. It runs inside every op-dispatch
// loop, so it must stay at 0 allocs/op (benchguard-gated).
func BenchmarkSessionArrival(b *testing.B) {
	sa := workload.NewSessionArrival(5, 2_000_000, 50_000, 3, 9)
	var sink int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += sa.NextGap(0)
	}
	_ = sink
}

// --- Large-scale tier ------------------------------------------------------
//
// The benchmarks below run against a datagen-scale dataset: 100M keys by
// default (the paper's "realistic data sizes" argument needs indexes that
// dwarf the caches), overridable down for CI with LSBENCH_LARGE_N. They are
// excluded from bench-smoke (-skip '^BenchmarkLarge') and run via
// `make bench-large`, which pins LSBENCH_LARGE_N to a CI-sized value.

// largeN is the large-tier dataset size: LSBENCH_LARGE_N or 100M.
func largeN() int {
	if s := os.Getenv("LSBENCH_LARGE_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 100_000_000
}

// largeDataset builds the large key/value arrays once per process.
// Sequential generation with random gaps is O(n) with no dedup table, so
// 100M keys materialize in seconds rather than the minutes a hash-set
// uniqueness filter would take.
var largeDataset struct {
	once       sync.Once
	keys, vals []uint64
}

func largeKeys(b *testing.B) ([]uint64, []uint64) {
	b.Helper()
	largeDataset.once.Do(func() {
		n := largeN()
		largeDataset.keys = distgen.NewSequential(1, 1, 16).Keys(n)
		largeDataset.vals = make([]uint64, n)
	})
	return largeDataset.keys, largeDataset.vals
}

// BenchmarkLargeBTreeBulkLoad measures the parallel arena bulk load.
func BenchmarkLargeBTreeBulkLoad(b *testing.B) {
	keys, vals := largeKeys(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := btree.NewDefault()
		tr.BulkLoad(keys, vals)
	}
}

// BenchmarkLargeRMITrain measures RMI bulk load + parallel leaf training.
func BenchmarkLargeRMITrain(b *testing.B) {
	keys, vals := largeKeys(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := rmi.NewDefault()
		ix.BulkLoad(keys, vals)
	}
}

// BenchmarkLargeALEXBulkLoad measures the parallel arena node build.
func BenchmarkLargeALEXBulkLoad(b *testing.B) {
	keys, vals := largeKeys(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := alex.New()
		ix.BulkLoad(keys, vals)
	}
}

// largeProbe strides pseudo-randomly through the key space so lookups are
// cache-hostile (the point of the 100M tier) yet deterministic.
func largeProbe(i, n int) int { return int(uint64(i) * 0x9E3779B97F4A7C15 % uint64(n)) }

func BenchmarkLargeBTreeGet(b *testing.B) {
	keys, vals := largeKeys(b)
	tr := btree.NewDefault()
	tr.BulkLoad(keys, vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[largeProbe(i, len(keys))])
	}
}

func BenchmarkLargeRMIGet(b *testing.B) {
	keys, vals := largeKeys(b)
	ix := rmi.NewDefault()
	ix.BulkLoad(keys, vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Get(keys[largeProbe(i, len(keys))])
	}
}

func BenchmarkLargeALEXGet(b *testing.B) {
	keys, vals := largeKeys(b)
	ix := alex.New()
	ix.BulkLoad(keys, vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Get(keys[largeProbe(i, len(keys))])
	}
}
